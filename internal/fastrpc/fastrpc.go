// Package fastrpc models Qualcomm's FastRPC CPU↔DSP transport as the
// paper's Fig. 7 draws it: a one-time session setup that maps the DSP
// into the application process, then per-call user→kernel→driver
// crossings, cache maintenance for shared buffers, and the co-processor
// dispatch. The DSP itself is a capacity-1 resource, so concurrent
// clients queue (the multi-tenancy effect of Fig. 9).
package fastrpc

import (
	"time"

	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
)

// Breakdown itemizes where one offloaded call spent its time.
type Breakdown struct {
	// Setup is the session-establishment share (zero on warm calls).
	Setup time.Duration
	// Transport covers kernel crossings, cache flush and DSP wakeup.
	Transport time.Duration
	// Queue is time spent waiting for the DSP behind other clients.
	Queue time.Duration
	// Exec is the on-DSP execution time.
	Exec time.Duration
}

// Total returns the end-to-end call latency.
func (b Breakdown) Total() time.Duration { return b.Setup + b.Transport + b.Queue + b.Exec }

// Stage is one labelled step of the Fig. 7 call flow.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Channel is a FastRPC connection from one process to the DSP.
type Channel struct {
	eng    *sim.Engine
	params soc.RPCParams
	dsp    *sim.Resource

	state   int // 0 = cold, 1 = setting up, 2 = ready
	waiters []func()

	// Tracer, when set, records each call's sub-steps (rpc-down, the DSP
	// execution, rpc-up) as spans with CPU↔DSP flow links. Nil disables
	// tracing at zero cost.
	Tracer *telemetry.Tracer
	// Metrics, when set, aggregates per-call transport/queue/exec
	// latencies. Nil disables collection at zero cost.
	Metrics *telemetry.Registry

	// Accounting.
	calls          int
	setupPaid      bool
	transportTotal time.Duration
}

const (
	stateCold = iota
	stateSettingUp
	stateReady
)

// NewChannel creates a cold channel. dsp is the shared DSP resource; all
// channels offloading to the same DSP must share it.
func NewChannel(eng *sim.Engine, params soc.RPCParams, dsp *sim.Resource) *Channel {
	return &Channel{eng: eng, params: params, dsp: dsp}
}

// Ready reports whether the session is established (warm).
func (c *Channel) Ready() bool { return c.state == stateReady }

// Calls returns the number of completed invocations.
func (c *Channel) Calls() int { return c.calls }

// Invoke offloads a unit of DSP work: execTime on the DSP moving
// payloadBytes through shared buffers. onDone receives the per-call
// breakdown. The first call on a cold channel pays the session setup —
// the cold-start penalty of §IV-C.
func (c *Channel) Invoke(payloadBytes int64, execTime time.Duration, onDone func(Breakdown)) {
	c.InvokeSpan(payloadBytes, execTime, nil, "dsp-exec", onDone)
}

// InvokeSpan is Invoke with telemetry context: parent (may be nil)
// becomes the parent of the call's spans, and label names the on-DSP
// execution span ("infer" for inference, "pre-dsp" for offloaded
// pre-processing, "graph-init" for weight download).
func (c *Channel) InvokeSpan(payloadBytes int64, execTime time.Duration, parent *telemetry.ActiveSpan, label string, onDone func(Breakdown)) {
	if execTime < 0 || payloadBytes < 0 {
		panic("fastrpc: negative invoke arguments")
	}
	issued := c.eng.Now()
	start := func() {
		setupShare := c.eng.Now().Sub(issued)
		if setupShare > 0 {
			c.Tracer.Emit("rpc-setup", "fastrpc", telemetry.TrackCPU, parent, issued, c.eng.Now())
		}
		c.invokeWarm(payloadBytes, execTime, setupShare, parent, label, onDone)
	}
	switch c.state {
	case stateReady:
		start()
	case stateSettingUp:
		c.waiters = append(c.waiters, start)
	case stateCold:
		c.state = stateSettingUp
		c.waiters = append(c.waiters, start)
		c.eng.After(c.params.SessionSetup, func() {
			c.state = stateReady
			c.setupPaid = true
			ws := c.waiters
			c.waiters = nil
			for _, w := range ws {
				w()
			}
		})
	}
}

func (c *Channel) invokeWarm(payloadBytes int64, execTime time.Duration, setupShare time.Duration, parent *telemetry.ActiveSpan, label string, onDone func(Breakdown)) {
	// Outbound: user→kernel crossing ×2 (submit + driver signal), cache
	// flush for the payload, DSP wakeup.
	kb := (payloadBytes + 1023) / 1024
	flush := time.Duration(kb) * c.params.CacheFlushPerKB
	outbound := 2*c.params.KernelCrossing + flush + c.params.DSPWakeup
	inbound := 2 * c.params.KernelCrossing // completion signal + return

	t0 := c.eng.Now()
	c.eng.After(outbound, func() {
		enqueued := c.eng.Now()
		down := c.Tracer.Emit("rpc-down", "fastrpc", telemetry.TrackCPU, parent, t0, enqueued)
		c.dsp.Acquire(execTime, func(start, end sim.Time) {
			queue := start.Sub(enqueued)
			exec := c.Tracer.Emit(label, "fastrpc", telemetry.TrackDSP, parent, start, end)
			c.Tracer.Link("fastrpc", down, exec)
			c.eng.After(inbound, func() {
				up := c.Tracer.Emit("rpc-up", "fastrpc", telemetry.TrackCPU, parent, end, c.eng.Now())
				c.Tracer.Link("fastrpc", exec, up)
				c.calls++
				c.transportTotal += outbound + inbound
				c.Metrics.Inc("aitax_fastrpc_calls_total")
				c.Metrics.Observe("aitax_fastrpc_transport_ms", float64(outbound+inbound)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_queue_ms", float64(queue)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_exec_ms", float64(execTime)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_cache_flush_ms", float64(flush)/float64(time.Millisecond))
				if onDone != nil {
					onDone(Breakdown{
						Setup:     setupShare,
						Transport: outbound + inbound,
						Queue:     queue,
						Exec:      execTime,
					})
				}
			})
		})
	})
}

// CallStages itemizes the Fig. 7 flow for a payload of the given size on
// a warm channel, in order.
func (c *Channel) CallStages(payloadBytes int64) []Stage {
	kb := (payloadBytes + 1023) / 1024
	return []Stage{
		{"user->kernel (submit ioctl)", c.params.KernelCrossing},
		{"kernel driver -> DSP signal", c.params.KernelCrossing},
		{"cache flush (shared buffer)", time.Duration(kb) * c.params.CacheFlushPerKB},
		{"DSP wakeup/dispatch", c.params.DSPWakeup},
		{"DSP -> kernel completion", c.params.KernelCrossing},
		{"kernel -> user return", c.params.KernelCrossing},
	}
}

// SetupCost returns the one-time session-establishment cost.
func (c *Channel) SetupCost() time.Duration { return c.params.SessionSetup }
