// Package fastrpc models Qualcomm's FastRPC CPU↔DSP transport as the
// paper's Fig. 7 draws it: a one-time session setup that maps the DSP
// into the application process, then per-call user→kernel→driver
// crossings, cache maintenance for shared buffers, and the co-processor
// dispatch. The DSP itself is a capacity-1 resource, so concurrent
// clients queue (the multi-tenancy effect of Fig. 9).
//
// The transport is fallible when a faults.Injector is attached: invoke
// attempts can fail in transport or hang until their deadline, session
// setup can fail (leaving the channel cold and re-initializable),
// driver stalls stretch DSP occupancy, and a thermal trip takes the
// accelerator down for good. The channel retries retryable failures
// with exponential backoff; every failed attempt and backoff wait
// consumes virtual time and is reported in Breakdown.Retry — that time
// is pure AI tax.
package fastrpc

import (
	"time"

	"aitax/internal/faults"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
)

// Breakdown itemizes where one offloaded call spent its time.
type Breakdown struct {
	// Setup is the session-establishment share (zero on warm calls).
	Setup time.Duration
	// Transport covers kernel crossings, cache flush and DSP wakeup.
	Transport time.Duration
	// Queue is time spent waiting for the DSP behind other clients.
	Queue time.Duration
	// Exec is the on-DSP execution time (including any injected driver
	// stall — the run-to-run variability tail of §III).
	Exec time.Duration
	// Retry is virtual time burned by failed attempts and backoff waits
	// before the call succeeded (or gave up). Zero on fault-free calls.
	Retry time.Duration
	// Attempts is how many invoke attempts ran (1 on fault-free calls,
	// 0 when session setup itself failed).
	Attempts int
	// Faults counts injected faults this call absorbed (failed attempts
	// plus driver stalls).
	Faults int
	// Err is the terminal failure after retries were exhausted, or nil.
	// When Err is set only Setup and Retry carry time.
	Err error
}

// Total returns the end-to-end call latency, retries included.
func (b Breakdown) Total() time.Duration {
	return b.Setup + b.Transport + b.Queue + b.Exec + b.Retry
}

// Stage is one labelled step of the Fig. 7 call flow.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Channel is a FastRPC connection from one process to the DSP.
type Channel struct {
	eng    *sim.Engine
	params soc.RPCParams
	dsp    *sim.Resource

	state   int // 0 = cold, 1 = setting up, 2 = ready
	waiters []func(error)

	// Tracer, when set, records each call's sub-steps (rpc-down, the DSP
	// execution, rpc-up) as spans with CPU↔DSP flow links. Nil disables
	// tracing at zero cost.
	Tracer *telemetry.Tracer
	// Metrics, when set, aggregates per-call transport/queue/exec
	// latencies. Nil disables collection at zero cost.
	Metrics *telemetry.Registry
	// Faults, when set, injects transport/timeout/setup/stall/thermal
	// failures into the call flow. Nil keeps the channel infallible.
	Faults *faults.Injector

	// Accounting.
	calls          int
	setupPaid      bool
	transportTotal time.Duration
	retryTotal     time.Duration
	failedCalls    int
}

const (
	stateCold = iota
	stateSettingUp
	stateReady
)

// NewChannel creates a cold channel. dsp is the shared DSP resource; all
// channels offloading to the same DSP must share it.
func NewChannel(eng *sim.Engine, params soc.RPCParams, dsp *sim.Resource) *Channel {
	return &Channel{eng: eng, params: params, dsp: dsp}
}

// Ready reports whether the session is established (warm).
func (c *Channel) Ready() bool { return c.state == stateReady }

// Calls returns the number of completed invocations.
func (c *Channel) Calls() int { return c.calls }

// FailedCalls returns the number of invocations that exhausted their
// retries (or hit a non-retryable fault) and reported an error.
func (c *Channel) FailedCalls() int { return c.failedCalls }

// RetryTotal returns the cumulative virtual time burned in failed
// attempts and backoff waits across all calls.
func (c *Channel) RetryTotal() time.Duration { return c.retryTotal }

// Invoke offloads a unit of DSP work: execTime on the DSP moving
// payloadBytes through shared buffers. onDone receives the per-call
// breakdown. The first call on a cold channel pays the session setup —
// the cold-start penalty of §IV-C. Check Breakdown.Err: with a fault
// injector attached the call can fail after exhausting its retries.
func (c *Channel) Invoke(payloadBytes int64, execTime time.Duration, onDone func(Breakdown)) {
	c.InvokeSpan(payloadBytes, execTime, nil, "dsp-exec", onDone)
}

// InvokeSpan is Invoke with telemetry context: parent (may be nil)
// becomes the parent of the call's spans, and label names the on-DSP
// execution span ("infer" for inference, "pre-dsp" for offloaded
// pre-processing, "graph-init" for weight download).
func (c *Channel) InvokeSpan(payloadBytes int64, execTime time.Duration, parent *telemetry.ActiveSpan, label string, onDone func(Breakdown)) {
	if execTime < 0 || payloadBytes < 0 {
		panic("fastrpc: negative invoke arguments")
	}
	issued := c.eng.Now()
	start := func(err error) {
		if err != nil {
			// Session setup never came up: the call fails without an
			// invoke attempt. The wait is pure retry tax.
			wasted := c.eng.Now().Sub(issued)
			c.failCall(Breakdown{Retry: wasted, Err: err}, parent, onDone)
			return
		}
		setupShare := c.eng.Now().Sub(issued)
		if setupShare > 0 {
			c.Tracer.Emit("rpc-setup", "fastrpc", telemetry.TrackCPU, parent, issued, c.eng.Now())
		}
		c.invokeAttempt(1, 0, payloadBytes, execTime, setupShare, parent, label, onDone)
	}
	switch c.state {
	case stateReady:
		start(nil)
	case stateSettingUp:
		c.waiters = append(c.waiters, start)
	case stateCold:
		c.state = stateSettingUp
		c.waiters = append(c.waiters, start)
		c.beginSetup(1)
	}
}

// beginSetup runs one session-setup attempt. Setup failures are retried
// with the same backoff policy as invokes; if every attempt fails the
// channel returns to cold — not Ready — so a later call can try to
// establish the session from scratch.
func (c *Channel) beginSetup(attempt int) {
	t0 := c.eng.Now()
	c.eng.After(c.params.SessionSetup, func() {
		if err := c.Faults.SessionSetup(); err != nil {
			c.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", faults.SiteSessionSetup.String()))
			if attempt < c.Faults.MaxAttempts() {
				backoff := c.Faults.BackoffFor(attempt)
				c.eng.After(backoff, func() {
					c.Tracer.Emit("rpc-retry", "faults", telemetry.TrackCPU, nil, t0, c.eng.Now())
					c.Metrics.Inc("aitax_faults_retries_total")
					c.beginSetup(attempt + 1)
				})
				return
			}
			// Exhausted: the channel is cold again, and every queued
			// caller learns the session never came up.
			c.state = stateCold
			ws := c.waiters
			c.waiters = nil
			ferr := &faults.Error{Site: faults.SiteSessionSetup, Attempts: attempt, Target: "fastrpc"}
			for _, w := range ws {
				w(ferr)
			}
			return
		}
		c.state = stateReady
		c.setupPaid = true
		ws := c.waiters
		c.waiters = nil
		for _, w := range ws {
			w(nil)
		}
	})
}

// invokeAttempt runs one invoke attempt; retryAccum carries the virtual
// time already burned by earlier failed attempts and backoffs.
func (c *Channel) invokeAttempt(attempt int, retryAccum time.Duration, payloadBytes int64, execTime, setupShare time.Duration, parent *telemetry.ActiveSpan, label string, onDone func(Breakdown)) {
	// Outbound: user→kernel crossing ×2 (submit + driver signal), cache
	// flush for the payload, DSP wakeup.
	kb := (payloadBytes + 1023) / 1024
	flush := time.Duration(kb) * c.params.CacheFlushPerKB
	outbound := 2*c.params.KernelCrossing + flush + c.params.DSPWakeup
	inbound := 2 * c.params.KernelCrossing // completion signal + return

	t0 := c.eng.Now()
	out := c.Faults.RPCAttempt(t0)
	switch out.Kind {
	case faults.RPCAccelDown:
		// Thermal trip: the driver rejects the submit ioctl. Not
		// retryable — the accelerator is not coming back this run.
		if out.TripFirst {
			c.Tracer.Instant("thermal-trip", "faults", telemetry.TrackDSP, parent, t0)
			c.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", faults.SiteThermalTrip.String()))
		}
		cost := 2 * c.params.KernelCrossing
		c.eng.After(cost, func() {
			c.failCall(Breakdown{
				Setup:    setupShare,
				Retry:    retryAccum + cost,
				Attempts: attempt,
				Faults:   attempt - 1,
				Err:      &faults.Error{Site: faults.SiteThermalTrip, Attempts: attempt, Target: label},
			}, parent, onDone)
		})
		return
	case faults.RPCTransportError, faults.RPCTimeout:
		var cost time.Duration
		var site faults.Site
		if out.Kind == faults.RPCTransportError {
			// The submit path completes, then the driver signals the
			// failure back with one more kernel crossing.
			cost = outbound + c.params.KernelCrossing
			site = faults.SiteRPCTransport
		} else {
			// The call is lost; the caller waits out its deadline.
			cost = c.Faults.Deadline()
			site = faults.SiteRPCTimeout
		}
		c.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", site.String()))
		if attempt < c.Faults.MaxAttempts() {
			backoff := c.Faults.BackoffFor(attempt)
			c.eng.After(cost+backoff, func() {
				c.Tracer.Emit("rpc-retry", "faults", telemetry.TrackCPU, parent, t0, c.eng.Now())
				c.Metrics.Inc("aitax_faults_retries_total")
				c.Metrics.Observe("aitax_faults_retry_ms", float64(cost+backoff)/float64(time.Millisecond))
				c.invokeAttempt(attempt+1, retryAccum+cost+backoff, payloadBytes, execTime, setupShare, parent, label, onDone)
			})
		} else {
			c.eng.After(cost, func() {
				c.failCall(Breakdown{
					Setup:    setupShare,
					Retry:    retryAccum + cost,
					Attempts: attempt,
					Faults:   attempt,
					Err:      &faults.Error{Site: site, Attempts: attempt, Target: label},
				}, parent, onDone)
			})
		}
		return
	}

	// Fault-free attempt (possibly stretched by a driver stall).
	hold := execTime + out.Stall
	stallFault := 0
	if out.Stall > 0 {
		stallFault = 1
	}
	c.eng.After(outbound, func() {
		enqueued := c.eng.Now()
		down := c.Tracer.Emit("rpc-down", "fastrpc", telemetry.TrackCPU, parent, t0, enqueued)
		c.dsp.Acquire(hold, func(start, end sim.Time) {
			queue := start.Sub(enqueued)
			exec := c.Tracer.Emit(label, "fastrpc", telemetry.TrackDSP, parent, start, end)
			c.Tracer.Link("fastrpc", down, exec)
			if out.Stall > 0 {
				c.Tracer.Emit("driver-stall", "faults", telemetry.TrackDSP, exec, end.Add(-out.Stall), end)
				c.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", faults.SiteDriverStall.String()))
				c.Metrics.Observe("aitax_faults_stall_ms", float64(out.Stall)/float64(time.Millisecond))
			}
			c.eng.After(inbound, func() {
				up := c.Tracer.Emit("rpc-up", "fastrpc", telemetry.TrackCPU, parent, end, c.eng.Now())
				c.Tracer.Link("fastrpc", exec, up)
				c.calls++
				c.transportTotal += outbound + inbound
				c.retryTotal += retryAccum
				c.Metrics.Inc("aitax_fastrpc_calls_total")
				c.Metrics.Observe("aitax_fastrpc_transport_ms", float64(outbound+inbound)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_queue_ms", float64(queue)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_exec_ms", float64(execTime)/float64(time.Millisecond))
				c.Metrics.Observe("aitax_fastrpc_cache_flush_ms", float64(flush)/float64(time.Millisecond))
				if onDone != nil {
					onDone(Breakdown{
						Setup:     setupShare,
						Transport: outbound + inbound,
						Queue:     queue,
						Exec:      hold,
						Retry:     retryAccum,
						Attempts:  attempt,
						Faults:    attempt - 1 + stallFault,
					})
				}
			})
		})
	})
}

// failCall finishes a call that gave up, recording the failure before
// handing the breakdown to the caller.
func (c *Channel) failCall(b Breakdown, parent *telemetry.ActiveSpan, onDone func(Breakdown)) {
	c.failedCalls++
	c.retryTotal += b.Retry
	c.Tracer.Instant("rpc-failed", "faults", telemetry.TrackCPU, parent, c.eng.Now())
	c.Metrics.Inc("aitax_faults_failed_calls_total")
	if onDone != nil {
		onDone(b)
	}
}

// CallStages itemizes the Fig. 7 flow for a payload of the given size on
// a warm channel, in order.
func (c *Channel) CallStages(payloadBytes int64) []Stage {
	kb := (payloadBytes + 1023) / 1024
	return []Stage{
		{"user->kernel (submit ioctl)", c.params.KernelCrossing},
		{"kernel driver -> DSP signal", c.params.KernelCrossing},
		{"cache flush (shared buffer)", time.Duration(kb) * c.params.CacheFlushPerKB},
		{"DSP wakeup/dispatch", c.params.DSPWakeup},
		{"DSP -> kernel completion", c.params.KernelCrossing},
		{"kernel -> user return", c.params.KernelCrossing},
	}
}

// SetupCost returns the one-time session-establishment cost.
func (c *Channel) SetupCost() time.Duration { return c.params.SessionSetup }
