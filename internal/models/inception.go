package models

import (
	"aitax/internal/nn"
	"aitax/internal/tensor"
)

// inceptionA lays down an Inception-A-style module: 1×1, 5×5 (as two
// branch convs), double-3×3 and pooled-1×1 branches, concatenated.
// in is the module's input width; the output width is the branch sum.
func inceptionA(b *nn.Builder, in, poolProj int) int {
	b.Conv(64, 1, 1).ReLU()
	b.SetChannels(in).Conv(48, 1, 1).ReLU().Conv(64, 5, 1).ReLU()
	b.SetChannels(in).Conv(64, 1, 1).ReLU().Conv(96, 3, 1).ReLU().Conv(96, 3, 1).ReLU()
	b.SetChannels(in).AvgPool(3, 1).Conv(poolProj, 1, 1).ReLU()
	out := 64 + 64 + 96 + poolProj
	b.Concat(out)
	return out
}

// inceptionB lays down a 17×17-stage module built around factorized 7×7
// convolutions (1×7 followed by 7×1), the structure that makes the
// Inception B stage cheap relative to a full 7×7.
func inceptionB(b *nn.Builder, in, mid int) int {
	b.Conv(192, 1, 1).ReLU()
	b.SetChannels(in).Conv(mid, 1, 1).ReLU().ConvRect(mid, 1, 7).ReLU().ConvRect(192, 7, 1).ReLU()
	b.SetChannels(in).Conv(mid, 1, 1).ReLU().
		ConvRect(mid, 7, 1).ReLU().ConvRect(mid, 1, 7).ReLU().
		ConvRect(mid, 7, 1).ReLU().ConvRect(192, 1, 7).ReLU()
	b.SetChannels(in).AvgPool(3, 1).Conv(192, 1, 1).ReLU()
	out := 192 * 4
	b.Concat(out)
	return out
}

// inceptionC lays down an 8×8-stage module whose 3×3 convolutions are
// factorized into 1×3/3×1 pairs, as in the published architecture.
func inceptionC(b *nn.Builder, in int) int {
	b.Conv(320, 1, 1).ReLU()
	b.SetChannels(in).Conv(384, 1, 1).ReLU().ConvRect(192, 1, 3).ReLU().ConvRect(192, 3, 1).ReLU()
	b.SetChannels(in).Conv(448, 1, 1).ReLU().ConvRect(384, 3, 1).ReLU().
		ConvRect(192, 1, 3).ReLU().ConvRect(192, 3, 1).ReLU()
	b.SetChannels(in).AvgPool(3, 1).Conv(192, 1, 1).ReLU()
	out := 320 + 384 + 384 + 192
	b.Concat(out)
	return out
}

// InceptionV3 reconstructs Inception v3 at 299×299 (Table I row 7, used
// as the face-recognition workload): ~23.8M parameters, ~5.7 GFLOPs.
// Only about half of its ops offload under NNAPI on the studied SoCs,
// which the driver support matrices encode.
func InceptionV3() *Model {
	b := nn.NewBuilder("Inception v3", 299, 299, 3)
	// Stem.
	b.Conv(32, 3, 2).ReLU()
	b.Conv(32, 3, 1).ReLU()
	b.Conv(64, 3, 1).ReLU().MaxPool(3, 2)
	b.Conv(80, 1, 1).ReLU()
	b.Conv(192, 3, 1).ReLU().MaxPool(3, 2)
	b.SetSpatial(35, 35)
	// 3 × Inception-A at 35×35.
	w := inceptionA(b, 192, 32)
	w = inceptionA(b, w, 64)
	w = inceptionA(b, w, 64)
	// Reduction to 17×17.
	b.Conv(384, 3, 2).ReLU()
	b.SetSpatial(17, 17).SetChannels(768)
	// 4 × Inception-B at 17×17.
	w = 768
	for i := 0; i < 4; i++ {
		w = inceptionB(b, w, 128+32*i)
	}
	// Reduction to 8×8.
	b.Conv(1280, 3, 2).ReLU()
	b.SetSpatial(8, 8).SetChannels(1280)
	// 2 × Inception-C at 8×8.
	w = inceptionC(b, 1280)
	w = inceptionC(b, w)
	b.Conv(2048, 1, 1).ReLU()
	b.GlobalAvgPool().FC(1001).Softmax()
	return &Model{
		Name: "Inception v3", Task: FaceRecognition,
		InputW: 299, InputH: 299, NumClasses: 1001,
		Graph:        b.Graph(),
		Pre:          classifierPre(299),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, NNAPIInt8: true, CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, 1001}},
	}
}

// InceptionV4 reconstructs Inception v4 at 299×299 (Table I row 6):
// ~42.7M parameters, roughly double Inception v3's compute.
func InceptionV4() *Model {
	b := nn.NewBuilder("Inception v4", 299, 299, 3)
	// Stem (heavier than v3's).
	b.Conv(32, 3, 2).ReLU()
	b.Conv(32, 3, 1).ReLU()
	b.Conv(64, 3, 1).ReLU()
	b.Conv(96, 3, 2).ReLU()
	b.Conv(96, 3, 1).ReLU()
	b.Conv(192, 3, 1).ReLU().MaxPool(3, 2)
	b.SetSpatial(35, 35).SetChannels(384)
	// 4 × Inception-A.
	w := 384
	for i := 0; i < 4; i++ {
		w = inceptionA(b, w, 96)
	}
	// Reduction.
	b.Conv(1024, 3, 2).ReLU()
	b.SetSpatial(17, 17).SetChannels(1024)
	// 7 × Inception-B.
	w = 1024
	for i := 0; i < 7; i++ {
		w = inceptionB(b, w, 192)
	}
	// Reduction.
	b.Conv(1536, 3, 2).ReLU()
	b.SetSpatial(8, 8).SetChannels(1536)
	// 3 × Inception-C.
	for i := 0; i < 3; i++ {
		w = inceptionC(b, 1536)
		b.SetChannels(1536)
	}
	b.GlobalAvgPool().FC(1001).Softmax()
	return &Model{
		Name: "Inception v4", Task: FaceRecognition,
		InputW: 299, InputH: 299, NumClasses: 1001,
		Graph:        b.Graph(),
		Pre:          classifierPre(299),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, NNAPIInt8: true, CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, 1001}},
	}
}
