package models

import (
	"aitax/internal/nn"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

// PoseNet reconstructs the PoseNet MobileNet-v1 person pose model at
// 224×224 (Table I row 10): an OS-16 MobileNet v1 backbone with heatmap
// and offset heads over 17 keypoints. Its pre-processing includes the
// rotate step (§II-B) and its post-processing is keypoint calculation.
func PoseNet() *Model {
	b := nn.NewBuilder("PoseNet", 224, 224, 3)
	b.Conv(32, 3, 2).ReLU6()
	type blk struct{ c, s int }
	for _, bl := range []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		// Final stage keeps stride 1 so the output stays 14×14 (OS 16).
		{1024, 1}, {1024, 1},
	} {
		b.Separable(bl.c, bl.s)
	}
	// Heads: 17 keypoint heatmaps + 34 offset channels.
	b.Conv(17, 1, 1).Sigmoid()
	b.SetChannels(1024)
	b.Conv(34, 1, 1)
	return &Model{
		Name: "PoseNet", Task: PoseEstimation,
		InputW: 224, InputH: 224, NumClasses: 17,
		Graph: b.Graph(),
		Pre: preproc.Spec{
			CropFraction: 0.875,
			TargetW:      224, TargetH: 224,
			Mean: 127.5, Std: 127.5,
			RotateTurns: 1,
		},
		PostTasks:        "calculate keypoints",
		Support:          Support{NNAPIFP32: true, CPUFP32: true},
		OutputShapes:     []tensor.Shape{{1, 14, 14, 17}, {1, 14, 14, 34}},
		PoseOutputStride: 16,
	}
}
