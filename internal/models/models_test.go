package models

import (
	"testing"

	"aitax/internal/nn"
	"aitax/internal/tensor"
)

func TestZooHasElevenModels(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("zoo size = %d, want 11 (Table I)", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// macRange pins each model's compute within a plausible band around the
// published model-card numbers (MACs, in millions).
func TestModelMACsMatchPublishedScale(t *testing.T) {
	ranges := map[string][2]float64{
		"MobileNet 1.0 v1":        {500, 650},    // 569M published
		"NasNet Mobile":           {280, 700},    // 564M published
		"SqueezeNet":              {600, 1300},   // ~0.86G (1.0)
		"EfficientNet-Lite0":      {300, 500},    // ~390M
		"AlexNet":                 {700, 1500},   // ~0.72G
		"Inception v4":            {8000, 16000}, // ~12.3G
		"Inception v3":            {4500, 8000},  // ~5.7G
		"Deeplab-v3 MobileNet-v2": {2500, 9000},
		"SSD MobileNet v2":        {450, 900},  // ~0.8G
		"PoseNet":                 {500, 1100}, // MobileNet-v1 backbone, OS16
		"Mobile BERT":             {2000, 4000},
	}
	for _, m := range All() {
		r, ok := ranges[m.Name]
		if !ok {
			t.Errorf("no MAC range for %s", m.Name)
			continue
		}
		mmacs := float64(m.Graph.TotalMACs()) / 1e6
		if mmacs < r[0] || mmacs > r[1] {
			t.Errorf("%s: %.0f MMACs outside [%v, %v]", m.Name, mmacs, r[0], r[1])
		}
	}
}

func TestModelParamsMatchPublishedScale(t *testing.T) {
	ranges := map[string][2]float64{ // millions of parameters
		"MobileNet 1.0 v1":        {3.5, 5},
		"NasNet Mobile":           {1.5, 7},
		"SqueezeNet":              {1, 2},
		"EfficientNet-Lite0":      {3.5, 6},
		"AlexNet":                 {50, 75},
		"Inception v4":            {35, 55},
		"Inception v3":            {20, 35},
		"Deeplab-v3 MobileNet-v2": {2, 8},
		"SSD MobileNet v2":        {3, 8},
		"PoseNet":                 {2, 5},
		"Mobile BERT":             {20, 45},
	}
	for _, m := range All() {
		r := ranges[m.Name]
		mp := float64(m.Graph.TotalParams()) / 1e6
		if mp < r[0] || mp > r[1] {
			t.Errorf("%s: %.2fM params outside [%v, %v]", m.Name, mp, r[0], r[1])
		}
	}
}

func TestInceptionHeavierThanMobileModels(t *testing.T) {
	// The paper attributes Inception's inference dominance to having
	// "significantly more parameters and operations" than mobile models.
	v3, _ := ByName("Inception v3")
	v4, _ := ByName("Inception v4")
	mob, _ := ByName("MobileNet 1.0 v1")
	if v3.Graph.TotalMACs() < 5*mob.Graph.TotalMACs() {
		t.Error("Inception v3 must be >5x MobileNet compute")
	}
	if v4.Graph.TotalMACs() < v3.Graph.TotalMACs() {
		t.Error("Inception v4 must exceed v3")
	}
}

func TestTableISupportMatrix(t *testing.T) {
	want := map[string]Support{
		"MobileNet 1.0 v1":        {true, true, true, true},
		"NasNet Mobile":           {true, false, true, false},
		"SqueezeNet":              {true, false, true, false},
		"EfficientNet-Lite0":      {true, true, true, true},
		"AlexNet":                 {false, false, true, true},
		"Inception v4":            {true, true, true, true},
		"Inception v3":            {true, true, true, true},
		"Deeplab-v3 MobileNet-v2": {true, false, true, false},
		"SSD MobileNet v2":        {true, true, true, true},
		"PoseNet":                 {true, false, true, false},
		"Mobile BERT":             {true, false, true, false},
	}
	for _, m := range All() {
		if m.Support != want[m.Name] {
			t.Errorf("%s support = %+v, want %+v", m.Name, m.Support, want[m.Name])
		}
	}
}

func TestSupportsLookup(t *testing.T) {
	s := Support{NNAPIFP32: true, CPUFP32: true, CPUInt8: true}
	if !s.Supports(true, tensor.Float32) || s.Supports(true, tensor.Int8) {
		t.Fatal("NNAPI support lookup wrong")
	}
	if !s.Supports(false, tensor.UInt8) {
		t.Fatal("CPU int8 lookup wrong")
	}
}

func TestResolutions(t *testing.T) {
	want := map[string]string{
		"MobileNet 1.0 v1":        "224x224",
		"NasNet Mobile":           "331x331",
		"SqueezeNet":              "227x227",
		"EfficientNet-Lite0":      "224x224",
		"AlexNet":                 "227x227",
		"Inception v4":            "299x299",
		"Inception v3":            "299x299",
		"Deeplab-v3 MobileNet-v2": "513x513",
		"SSD MobileNet v2":        "300x300",
		"PoseNet":                 "224x224",
		"Mobile BERT":             "-",
	}
	for _, m := range All() {
		if m.Resolution() != want[m.Name] {
			t.Errorf("%s resolution = %s, want %s", m.Name, m.Resolution(), want[m.Name])
		}
	}
}

func TestPreSpecsMatchTableI(t *testing.T) {
	want := map[string]string{
		"MobileNet 1.0 v1":        "scale, crop, normalize",
		"Deeplab-v3 MobileNet-v2": "scale, normalize",
		"PoseNet":                 "scale, crop, normalize, rotate",
		"Mobile BERT":             "tokenization",
	}
	for name, tasks := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Pre.Tasks(); got != tasks {
			t.Errorf("%s pre tasks = %q, want %q", name, got, tasks)
		}
	}
}

func TestQuantizedPreSpecSwitchesToTypeConversion(t *testing.T) {
	m, _ := ByName("MobileNet 1.0 v1")
	q := m.PreSpec(tensor.UInt8)
	if !q.Quantized || q.DType != tensor.UInt8 {
		t.Fatal("quantized spec not set")
	}
	f := m.PreSpec(tensor.Float32)
	if f.Quantized {
		t.Fatal("fp32 spec must not be quantized")
	}
}

func TestPostDescription(t *testing.T) {
	m, _ := ByName("MobileNet 1.0 v1")
	if m.PostDescription(tensor.Float32) != "topK" {
		t.Fatalf("fp32 post = %q", m.PostDescription(tensor.Float32))
	}
	if m.PostDescription(tensor.UInt8) != "topK, dequantization" {
		t.Fatalf("int8 post = %q", m.PostDescription(tensor.UInt8))
	}
}

func TestPostWorkByTask(t *testing.T) {
	for _, m := range All() {
		w := m.PostWork(tensor.Float32)
		if w.Ops <= 0 {
			t.Errorf("%s post work must be positive", m.Name)
		}
	}
	// Segmentation post-processing must dwarf classification's.
	dl, _ := ByName("Deeplab-v3 MobileNet-v2")
	mb, _ := ByName("MobileNet 1.0 v1")
	if dl.PostWork(tensor.Float32).Ops < 100*mb.PostWork(tensor.Float32).Ops {
		t.Error("mask flattening must be far heavier than topK")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
	m, err := ByName("PoseNet")
	if err != nil || m.PoseOutputStride != 16 {
		t.Fatalf("PoseNet lookup: %v, stride %d", err, m.PoseOutputStride)
	}
}

func TestByNameAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"MobileNetV1":          "MobileNet 1.0 v1",
		"mobilenet-1.0-v1":     "MobileNet 1.0 v1",
		"mobile bert":          "Mobile BERT",
		"bert":                 "Mobile BERT",
		"efficientnet-lite0":   "EfficientNet-Lite0",
		"DeepLabV3":            "Deeplab-v3 MobileNet-v2",
		"ssd_mobilenet_v2":     "SSD MobileNet v2",
		"Inception V3":         "Inception v3",
		"nasnet":               "NasNet Mobile",
		"deeplabv3mobilenetv2": "Deeplab-v3 MobileNet-v2",
	} {
		m, err := ByName(alias)
		if err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
		if m.Name != canonical {
			t.Fatalf("alias %q resolved to %q, want %q", alias, m.Name, canonical)
		}
	}
	// Normalization must not make distinct models collide or admit junk.
	if _, err := ByName("inception"); err == nil {
		t.Fatal("ambiguous bare 'inception' accepted")
	}
	if _, err := ByName("!!!"); err == nil {
		t.Fatal("punctuation-only name accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 11 || names[0] != "MobileNet 1.0 v1" || names[10] != "Mobile BERT" {
		t.Fatalf("names = %v", names)
	}
}

func TestOutputShapes(t *testing.T) {
	ssd, _ := ByName("SSD MobileNet v2")
	if len(ssd.OutputShapes) != 2 || ssd.OutputShapes[0][1] != 1917 {
		t.Fatalf("SSD outputs = %v", ssd.OutputShapes)
	}
	pose, _ := ByName("PoseNet")
	if len(pose.OutputShapes) != 2 || pose.OutputShapes[0][3] != 17 {
		t.Fatalf("PoseNet outputs = %v", pose.OutputShapes)
	}
	dl, _ := ByName("Deeplab-v3 MobileNet-v2")
	if !dl.OutputShapes[0].Equal(tensor.Shape{1, 513, 513, 21}) {
		t.Fatalf("DeepLab output = %v", dl.OutputShapes[0])
	}
}

func TestGraphsAreMostlyConvs(t *testing.T) {
	// CNN graphs must be dominated by conv-like MACs so NNAPI op-support
	// matrices bite where they should.
	for _, m := range All() {
		if m.Task == LanguageProcessing {
			continue
		}
		hist := m.Graph.KindHistogram()
		if hist[nn.Conv2D]+hist[nn.DepthwiseConv2D] == 0 {
			t.Errorf("%s has no convolutions", m.Name)
		}
	}
}

func TestQuantizable(t *testing.T) {
	mb, _ := ByName("MobileNet 1.0 v1")
	if !mb.Quantizable() {
		t.Fatal("MobileNet must be quantizable")
	}
	pn, _ := ByName("PoseNet")
	if pn.Quantizable() {
		t.Fatal("PoseNet int8 is not in Table I")
	}
}

func TestRegistryNamesMatch(t *testing.T) {
	// The registry's static names must mirror the Name field each
	// constructor sets, or ByName's exact-match fast path would build
	// the wrong model (or none).
	for _, r := range registry {
		if m := r.build(); m.Name != r.name {
			t.Errorf("registry name %q builds model named %q", r.name, m.Name)
		}
	}
}

func TestByNameBuildsFreshGraphs(t *testing.T) {
	// ByName must keep returning independent instances: callers cache
	// lookups themselves and the zoo promises rebuilt graphs per call.
	a, _ := ByName("MobileNet 1.0 v1")
	b, _ := ByName("MobileNet 1.0 v1")
	if a == b || a.Graph == b.Graph {
		t.Fatal("ByName returned a shared instance")
	}
	if a.Graph.NumOps() != b.Graph.NumOps() {
		t.Fatal("rebuilt graphs differ")
	}
}
