// Package models is the model zoo: op-graph reconstructions of the eleven
// TFLite-hosted models in the paper's Table I, with their pre- and
// post-processing specifications and framework support matrix. Parameter
// and MAC counts track the published model cards closely enough that
// relative inference costs (and which ops a driver can offload) are
// faithful; exact weights are irrelevant to the AI-tax analysis.
package models

import (
	"errors"
	"fmt"

	"aitax/internal/nn"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
	"aitax/internal/work"
)

// Task is the ML task category from Table I.
type Task string

// Table-I task categories.
const (
	Classification     Task = "Classification"
	FaceRecognition    Task = "Face Recognition"
	Segmentation       Task = "Segmentation"
	ObjectDetection    Task = "Object Detection"
	PoseEstimation     Task = "Pose Estimation"
	LanguageProcessing Task = "Language Processing"
)

// Support is the Table-I framework/precision support matrix (Y/N columns
// NNAPI-fp32, NNAPI-int8, CPU-fp32, CPU-int8).
type Support struct {
	NNAPIFP32, NNAPIInt8, CPUFP32, CPUInt8 bool
}

// Supports reports whether the (framework, dtype) combination is listed.
func (s Support) Supports(nnapi bool, dt tensor.DType) bool {
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	switch {
	case nnapi && !quant:
		return s.NNAPIFP32
	case nnapi && quant:
		return s.NNAPIInt8
	case !nnapi && !quant:
		return s.CPUFP32
	default:
		return s.CPUInt8
	}
}

// Model couples a graph with its pipeline requirements.
type Model struct {
	Name           string
	Task           Task
	InputW, InputH int
	NumClasses     int
	Graph          *nn.Graph
	Pre            preproc.Spec // fp32 pipeline; QuantPre derives the int8 one
	PostTasks      string       // Table-I post-processing description
	Support        Support

	// OutputShapes lists the model's raw output tensors, used by the
	// runtime to fabricate outputs for real post-processing runs.
	OutputShapes []tensor.Shape

	// PoseOutputStride is set for pose models (keypoint decode).
	PoseOutputStride int
}

// Resolution renders the Table-I input resolution ("224x224"); language
// models have none.
func (m *Model) Resolution() string {
	if m.InputW == 0 {
		return "-"
	}
	return fmt.Sprintf("%dx%d", m.InputW, m.InputH)
}

// PreSpec returns the pre-processing pipeline for the given precision.
// Quantized variants replace normalization with byte-to-quantized type
// conversion, as §II-B's "type conversion" paragraph describes.
func (m *Model) PreSpec(dt tensor.DType) preproc.Spec {
	s := m.Pre
	if dt == tensor.Int8 || dt == tensor.UInt8 {
		s.Quantized = true
		s.DType = dt
		s.Quant = tensor.QuantParams{Scale: 1, ZeroPoint: 0}
		s.Mean, s.Std = 0, 0
	}
	return s
}

// PostDescription renders the Table-I post-processing cell; quantized
// variants append the asterisked dequantization step.
func (m *Model) PostDescription(dt tensor.DType) string {
	if dt == tensor.Int8 || dt == tensor.UInt8 {
		return m.PostTasks + ", dequantization"
	}
	return m.PostTasks
}

// PostWork estimates the post-processing compute demand for one inference.
func (m *Model) PostWork(dt tensor.DType) work.Work {
	var w work.Work
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	switch m.Task {
	case Classification, FaceRecognition:
		if quant {
			w = w.Add(postproc.DequantizeWork(m.NumClasses))
		}
		w = w.Add(postproc.TopKWork(m.NumClasses, 5))
	case Segmentation:
		w = w.Add(postproc.FlattenMaskWork(m.InputH, m.InputW, m.NumClasses))
	case ObjectDetection:
		n := m.OutputShapes[0][1]
		if quant {
			w = w.Add(postproc.DequantizeWork(n * (4 + m.NumClasses)))
		}
		w = w.Add(postproc.DetectionWork(n, m.NumClasses))
	case PoseEstimation:
		hm := m.OutputShapes[0]
		w = w.Add(postproc.KeypointWork(hm[1], hm[2], hm[3]))
	case LanguageProcessing:
		w = w.Add(postproc.SoftmaxWork(m.NumClasses))
		w = w.Add(postproc.TopKWork(m.NumClasses, 1))
	}
	return w
}

// Quantizable reports whether an int8 variant exists in any framework.
func (m *Model) Quantizable() bool { return m.Support.NNAPIInt8 || m.Support.CPUInt8 }

// Validate checks the model definition.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("models: unnamed model")
	}
	if err := m.Graph.Validate(); err != nil {
		return fmt.Errorf("models: %s: %w", m.Name, err)
	}
	if err := m.Pre.Validate(); err != nil {
		return fmt.Errorf("models: %s: %w", m.Name, err)
	}
	if len(m.OutputShapes) == 0 {
		return fmt.Errorf("models: %s has no output shapes", m.Name)
	}
	if !m.Support.CPUFP32 && !m.Support.NNAPIFP32 && !m.Support.CPUInt8 && !m.Support.NNAPIInt8 {
		return fmt.Errorf("models: %s supports nothing", m.Name)
	}
	return nil
}

// registry lists the zoo in Table-I row order as (name, constructor)
// pairs, so lookups can build exactly the model they need instead of
// rebuilding all eleven graphs per call. Each name mirrors the Name
// field its constructor sets (pinned by TestRegistryNamesMatch).
var registry = []struct {
	name  string
	build func() *Model
}{
	{"MobileNet 1.0 v1", MobileNetV1},
	{"NasNet Mobile", NasNetMobile},
	{"SqueezeNet", SqueezeNet},
	{"EfficientNet-Lite0", EfficientNetLite0},
	{"AlexNet", AlexNet},
	{"Inception v4", InceptionV4},
	{"Inception v3", InceptionV3},
	{"Deeplab-v3 MobileNet-v2", DeepLabV3},
	{"SSD MobileNet v2", SSDMobileNetV2},
	{"PoseNet", PoseNet},
	{"Mobile BERT", MobileBERT},
}

// All returns the zoo in Table-I row order. Graphs are rebuilt on every
// call; callers that need identity should cache.
func All() []*Model {
	out := make([]*Model, len(registry))
	for i, r := range registry {
		out[i] = r.build()
	}
	return out
}

// normalize reduces a model name to its lowercase alphanumerics, so
// lookups tolerate case, spacing and punctuation differences
// ("MobileNetV1", "mobilenet-1.0-v1").
func normalize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+('a'-'A'))
		}
	}
	return string(out)
}

// aliases maps normalized shorthand names to canonical Table-I names,
// covering the common ways the paper and tooling abbreviate them.
var aliases = map[string]string{
	"mobilenet":        "MobileNet 1.0 v1",
	"mobilenetv1":      "MobileNet 1.0 v1",
	"nasnet":           "NasNet Mobile",
	"efficientnet":     "EfficientNet-Lite0",
	"efficientnetlite": "EfficientNet-Lite0",
	"deeplab":          "Deeplab-v3 MobileNet-v2",
	"deeplabv3":        "Deeplab-v3 MobileNet-v2",
	"ssdmobilenet":     "SSD MobileNet v2",
	"bert":             "Mobile BERT",
}

// ErrUnknownModel is the sentinel ByName wraps when no model matches;
// callers map lookup failures with errors.Is (a serving frontend turns
// it into a 404) instead of matching message text.
var ErrUnknownModel = errors.New("models: unknown model")

// ByName finds a model in the zoo by its Table-I name. Exact names win;
// otherwise the lookup falls back to a normalized comparison (case,
// spacing and punctuation insensitive) and a small alias table, so
// "MobileNetV1" resolves to "MobileNet 1.0 v1". Only the matched model
// is built — a lookup costs one graph build, not eleven.
func ByName(name string) (*Model, error) {
	for _, r := range registry {
		if r.name == name {
			return r.build(), nil
		}
	}
	want := normalize(name)
	if canon, ok := aliases[want]; ok {
		want = normalize(canon)
	}
	if want != "" {
		for _, r := range registry {
			if normalize(r.name) == want {
				return r.build(), nil
			}
		}
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownModel, name)
}

// Names lists the zoo's model names in Table-I order without building
// any graphs.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}
