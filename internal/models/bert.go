package models

import (
	"aitax/internal/nn"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

// MobileBERT reconstructs Mobile BERT for sentence classification
// (Table I row 11): a 12-layer encoder over 128 tokens sized so that
// total compute (~5.7 GFLOPs) and parameter count land in the published
// range. Pre-processing is tokenization; post-processing computes logits
// and takes topK.
func MobileBERT() *Model {
	const (
		seq    = 128
		hidden = 384
		heads  = 4
		inner  = 1536
		layers = 12
		vocab  = 30522
	)
	b := nn.NewSeqBuilder("Mobile BERT", seq, hidden)
	b.Embedding(vocab)
	for i := 0; i < layers; i++ {
		b.TransformerLayer(heads, inner)
	}
	b.SeqClassifier(2)
	return &Model{
		Name: "Mobile BERT", Task: LanguageProcessing,
		NumClasses: 2,
		Graph:      b.Graph(),
		Pre: preproc.Spec{
			Tokenize:   true,
			MaxTokens:  seq,
			SampleText: "the camera quality on this phone is great and the battery works well",
		},
		PostTasks:    "topK, compute logits",
		Support:      Support{NNAPIFP32: true, CPUFP32: true},
		OutputShapes: []tensor.Shape{{1, 2}},
	}
}
