package models

import (
	"aitax/internal/nn"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

// DeepLabV3 reconstructs Deeplab-v3 with a MobileNet-v2 backbone at
// 513×513 (Table I row 8): OS-16 feature extraction, an ASPP module with
// dilated branches, and bilinear upsampling back to input resolution.
// The paper notes its pre-processing has no crop step and its
// post-processing is mask flattening.
func DeepLabV3() *Model {
	b := nn.NewBuilder("Deeplab-v3 MobileNet-v2", 513, 513, 3)
	mobileNetV2Backbone(b, true)
	// Backbone leaves a 33×33×320 feature map (513 / 16 ≈ 33).
	b.SetSpatial(33, 33)
	in := 320
	// ASPP: 1×1 branch, three dilated 3×3 branches, image pooling branch.
	b.SetChannels(in).Conv(256, 1, 1).ReLU()
	b.SetChannels(in).DilatedConv(256, 3, 6).ReLU()
	b.SetChannels(in).DilatedConv(256, 3, 12).ReLU()
	b.SetChannels(in).DilatedConv(256, 3, 18).ReLU()
	b.SetChannels(in).GlobalAvgPool().Conv(256, 1, 1).ReLU().Upsample(33, 33)
	b.Concat(256 * 5)
	// Projection and classifier head.
	b.Conv(256, 1, 1).ReLU()
	b.Conv(21, 1, 1)
	b.Upsample(513, 513)
	return &Model{
		Name: "Deeplab-v3 MobileNet-v2", Task: Segmentation,
		InputW: 513, InputH: 513, NumClasses: 21,
		Graph: b.Graph(),
		Pre: preproc.Spec{
			TargetW: 513, TargetH: 513,
			Mean: 127.5, Std: 127.5,
			Native: true,
		},
		PostTasks:    "mask flattening",
		Support:      Support{NNAPIFP32: true, CPUFP32: true},
		OutputShapes: []tensor.Shape{{1, 513, 513, 21}},
	}
}
