package models

import (
	"aitax/internal/nn"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

func classifierPre(resolution int) preproc.Spec {
	return preproc.Spec{
		CropFraction: 0.875,
		TargetW:      resolution, TargetH: resolution,
		Mean: 127.5, Std: 127.5,
	}
}

// MobileNetV1 reconstructs MobileNet 1.0 v1 224 (Table I row 1):
// ~4.2M parameters, ~569M MACs.
func MobileNetV1() *Model {
	b := nn.NewBuilder("MobileNet 1.0 v1", 224, 224, 3)
	b.Conv(32, 3, 2).ReLU6()
	type blk struct{ c, s int }
	for _, bl := range []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	} {
		b.Separable(bl.c, bl.s)
	}
	b.GlobalAvgPool().FC(1001).Softmax()
	return &Model{
		Name: "MobileNet 1.0 v1", Task: Classification,
		InputW: 224, InputH: 224, NumClasses: 1001,
		Graph:        b.Graph(),
		Pre:          classifierPre(224),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, NNAPIInt8: true, CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, 1001}},
	}
}

// EfficientNetLite0 reconstructs EfficientNet-Lite0 224 (Table I row 4):
// ~4.7M parameters, ~390M MACs. Lite variants drop squeeze-excite and use
// ReLU6, which is what the builder emits.
func EfficientNetLite0() *Model {
	b := nn.NewBuilder("EfficientNet-Lite0", 224, 224, 3)
	b.Conv(32, 3, 2).ReLU6()
	type stage struct{ c, n, s, e int }
	for _, st := range []stage{
		{16, 1, 1, 1},
		{24, 2, 2, 6},
		{40, 2, 2, 6},
		{80, 3, 2, 6},
		{112, 3, 1, 6},
		{192, 4, 2, 6},
		{320, 1, 1, 6},
	} {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
			}
			b.InvertedResidual(st.c, s, st.e)
		}
	}
	b.Conv(1280, 1, 1).ReLU6().GlobalAvgPool().FC(1001).Softmax()
	return &Model{
		Name: "EfficientNet-Lite0", Task: Classification,
		InputW: 224, InputH: 224, NumClasses: 1001,
		Graph:        b.Graph(),
		Pre:          classifierPre(224),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, NNAPIInt8: true, CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, 1001}},
	}
}

// fire lays down a SqueezeNet fire module: 1×1 squeeze to s channels, then
// parallel 1×1 and 3×3 expands to e channels each, concatenated.
func fire(b *nn.Builder, s, e int) {
	b.Conv(s, 1, 1).ReLU()
	b.Conv(e, 1, 1).ReLU() // expand 1x1 branch
	b.SetChannels(s)       // rewind to squeeze output for the 3x3 branch
	b.Conv(e, 3, 1).ReLU() // expand 3x3 branch
	b.Concat(2 * e)
}

// SqueezeNet reconstructs SqueezeNet 1.0 at 227×227 (Table I row 3):
// ~1.2M parameters.
func SqueezeNet() *Model {
	b := nn.NewBuilder("SqueezeNet", 227, 227, 3)
	b.Conv(96, 7, 2).ReLU().MaxPool(3, 2)
	fire(b, 16, 64)
	fire(b, 16, 64)
	fire(b, 32, 128)
	b.MaxPool(3, 2)
	fire(b, 32, 128)
	fire(b, 48, 192)
	fire(b, 48, 192)
	fire(b, 64, 256)
	b.MaxPool(3, 2)
	fire(b, 64, 256)
	b.Conv(1000, 1, 1).ReLU().GlobalAvgPool().Softmax()
	return &Model{
		Name: "SqueezeNet", Task: Classification,
		InputW: 227, InputH: 227, NumClasses: 1000,
		Graph:        b.Graph(),
		Pre:          classifierPre(227),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, CPUFP32: true},
		OutputShapes: []tensor.Shape{{1, 1000}},
	}
}

// AlexNet reconstructs AlexNet at 256→227 (Table I row 5): ~60M
// parameters, FC-dominated. Table I lists it unsupported on NNAPI.
func AlexNet() *Model {
	b := nn.NewBuilder("AlexNet", 227, 227, 3)
	b.Conv(96, 11, 4).ReLU().LRN().MaxPoolValid(3, 2)
	b.Conv(256, 5, 1).ReLU().LRN().MaxPoolValid(3, 2)
	b.Conv(384, 3, 1).ReLU()
	b.Conv(384, 3, 1).ReLU()
	b.Conv(256, 3, 1).ReLU().MaxPoolValid(3, 2)
	b.FC(4096).ReLU().FC(4096).ReLU().FC(1000).Softmax()
	pre := classifierPre(227)
	pre.CropFraction = 227.0 / 256.0 // paper lists 256×256 source resolution
	return &Model{
		Name: "AlexNet", Task: Classification,
		InputW: 227, InputH: 227, NumClasses: 1000,
		Graph:        b.Graph(),
		Pre:          pre,
		PostTasks:    "topK",
		Support:      Support{CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, 1000}},
	}
}

// NasNetMobile reconstructs NASNet-A Mobile at 331×331 (Table I row 2):
// ~5.3M parameters, ~560M MACs. The cell topology is approximated with
// stacked separable-conv cells at NASNet's channel schedule; MAC totals
// match the model card, which is what drives cost and partitioning.
func NasNetMobile() *Model {
	b := nn.NewBuilder("NasNet Mobile", 331, 331, 3)
	b.Conv(32, 3, 2).ReLU()
	cell := func(c int, reduce bool) {
		s := 1
		if reduce {
			s = 2
		}
		b.DWConv(5, s).ReLU().Conv(c, 1, 1).ReLU()
		b.DWConv(3, 1).ReLU().Conv(c, 1, 1).ReLU()
	}
	// Reduction to stride 8 then three stacks of five cells at 66/132/264.
	cell(66, true)
	cell(66, true)
	for i := 0; i < 5; i++ {
		cell(66, false)
	}
	cell(132, true)
	for i := 0; i < 5; i++ {
		cell(132, false)
	}
	cell(264, true)
	for i := 0; i < 5; i++ {
		cell(264, false)
	}
	b.Conv(1056, 1, 1).ReLU().GlobalAvgPool().FC(1001).Softmax()
	return &Model{
		Name: "NasNet Mobile", Task: Classification,
		InputW: 331, InputH: 331, NumClasses: 1001,
		Graph:        b.Graph(),
		Pre:          classifierPre(331),
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, CPUFP32: true},
		OutputShapes: []tensor.Shape{{1, 1001}},
	}
}
