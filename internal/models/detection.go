package models

import (
	"aitax/internal/nn"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

// mobileNetV2Backbone lays down the standard MobileNet-v2 feature
// extractor. When outputStride16 is set, the final stage keeps stride 1
// (dilated), as DeepLab's OS-16 configuration requires.
func mobileNetV2Backbone(b *nn.Builder, outputStride16 bool) {
	b.Conv(32, 3, 2).ReLU6()
	type stage struct{ t, c, n, s int }
	stages := []stage{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
				if outputStride16 && si == 5 {
					s = 1 // dilate instead of stride for OS-16
				}
			}
			b.InvertedResidual(st.c, s, st.t)
		}
	}
}

// SSDMobileNetV2 reconstructs SSD MobileNet v2 at 300×300 (Table I row 9)
// with the standard 1917-anchor SSDLite head over 91 COCO classes.
func SSDMobileNetV2() *Model {
	b := nn.NewBuilder("SSD MobileNet v2", 300, 300, 3)
	mobileNetV2Backbone(b, false)
	// Feature pyramid: bottlenecked extra layers shrinking 10x10 -> 1x1.
	b.Conv(1280, 1, 1).ReLU6()
	b.Conv(256, 1, 1).ReLU6().Conv(512, 3, 2).ReLU6()
	b.Conv(128, 1, 1).ReLU6().Conv(256, 3, 2).ReLU6()
	b.Conv(128, 1, 1).ReLU6().Conv(256, 3, 2).ReLU6()
	b.Conv(64, 1, 1).ReLU6().Conv(128, 3, 2).ReLU6()
	// Prediction heads (box regressors + class scores), modelled as the
	// aggregate 1×1 convolutions over the pyramid features.
	b.Conv(4*6, 3, 1) // box head
	b.SetChannels(128)
	b.Conv(91*6, 3, 1).Softmax() // class head
	const anchors = 1917
	return &Model{
		Name: "SSD MobileNet v2", Task: ObjectDetection,
		InputW: 300, InputH: 300, NumClasses: 91,
		Graph: b.Graph(),
		Pre: preproc.Spec{
			CropFraction: 0.875,
			TargetW:      300, TargetH: 300,
			Mean: 127.5, Std: 127.5,
		},
		PostTasks:    "topK",
		Support:      Support{NNAPIFP32: true, NNAPIInt8: true, CPUFP32: true, CPUInt8: true},
		OutputShapes: []tensor.Shape{{1, anchors, 4}, {1, anchors, 91}},
	}
}
