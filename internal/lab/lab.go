// Package lab is a concurrent measurement-job engine: it fans a set of
// independent jobs (experiments, sweep points, validation runs) across a
// bounded goroutine worker pool and merges their results back in
// submission order, so that a run at any parallelism produces output
// byte-identical to a sequential run.
//
// Each simulated stack in this repository is single-threaded and fully
// deterministic, but the stacks themselves are independent — the paper's
// evaluation is ~15 table/figure regenerations that never share state.
// The lab exploits exactly that independence and nothing more:
//
//   - jobs run concurrently, results are emitted in submission order
//     (the deterministic merge);
//   - a panicking job becomes an error JobResult, never a crashed run;
//   - every job is accounted with its host wall-clock time and,
//     when the job reports it via [ReportSim], its simulated time;
//   - cancellation via context.Context stops unstarted jobs immediately
//     (running jobs observe the context through their own Run func).
package lab

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"aitax/internal/telemetry"
)

// Job is one unit of measurement work. Jobs must be independent of each
// other: the lab runs them in unspecified order and concurrently.
type Job struct {
	// ID labels the job in results and progress reports.
	ID string
	// Run performs the work. The context carries cancellation and the
	// lab's simulated-time accumulator (see ReportSim). The returned
	// value lands in JobResult.Value verbatim.
	Run func(ctx context.Context) (any, error)
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Index is the job's position in the submitted slice; results are
	// always merged back in Index order.
	Index int
	// ID echoes Job.ID.
	ID string
	// Value is whatever Job.Run returned (nil on error or panic).
	Value any
	// Err is the job's error. A recovered panic surfaces as a
	// *PanicError; a job skipped due to cancellation carries the
	// context's error.
	Err error
	// Wall is the host wall-clock time the job consumed.
	Wall time.Duration
	// Sim is the simulated virtual time the job reported via ReportSim
	// (zero if the job never reported).
	Sim time.Duration
	// Telemetry is the span/metrics bundle the job reported via
	// ReportTelemetry (nil if the job never reported).
	Telemetry *telemetry.Bundle
}

// PanicError is the error recorded when a job panics. The panic is
// confined to the job: the pool and all other jobs keep running.
type PanicError struct {
	// Value is the value the job panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", p.Value) }

// simAccount accumulates simulated time reported by a job.
type simAccount struct {
	mu sync.Mutex
	d  time.Duration
}

type simKey struct{}

// ReportSim attributes d of simulated virtual time to the job whose
// context ctx is. Outside a lab job it is a no-op, so measurement code
// can report unconditionally.
func ReportSim(ctx context.Context, d time.Duration) {
	acc, ok := ctx.Value(simKey{}).(*simAccount)
	if !ok {
		return
	}
	acc.mu.Lock()
	acc.d += d
	acc.mu.Unlock()
}

// telemetryAccount holds a job's reported telemetry bundle.
type telemetryAccount struct {
	mu sync.Mutex
	b  *telemetry.Bundle
}

type telemetryKey struct{}

// ReportTelemetry attaches a telemetry bundle to the job whose context
// ctx is; later reports within the same job merge after earlier ones.
// Outside a lab job it is a no-op, so measurement code can report
// unconditionally.
func ReportTelemetry(ctx context.Context, b *telemetry.Bundle) {
	acc, ok := ctx.Value(telemetryKey{}).(*telemetryAccount)
	if !ok || b == nil {
		return
	}
	acc.mu.Lock()
	if acc.b == nil {
		acc.b = b
	} else {
		acc.b = telemetry.MergeBundles(acc.b, b)
	}
	acc.mu.Unlock()
}

// MergeTelemetry combines the results' telemetry bundles in submission
// (Index) order — the same deterministic merge RunEmit applies to
// output, so aggregated spans and metrics are identical at any
// parallelism. Results without telemetry are skipped; with none at all
// it returns an empty bundle.
func MergeTelemetry(results []JobResult) *telemetry.Bundle {
	bundles := make([]*telemetry.Bundle, len(results))
	for i, r := range results {
		bundles[i] = r.Telemetry
	}
	return telemetry.MergeBundles(bundles...)
}

// Lab runs jobs across a bounded worker pool. The zero value is ready to
// use and runs GOMAXPROCS jobs at a time.
type Lab struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	// Parallelism 1 reproduces a strictly sequential run.
	Parallelism int
	// OnProgress, when set, is called once per job as it completes — in
	// completion order, not submission order — for progress reporting.
	// Calls are serialized; the callback need not lock.
	OnProgress func(JobResult)
}

// workers resolves the pool size for n jobs.
func (l *Lab) workers(n int) int {
	p := l.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run executes the jobs and returns their results in submission order,
// regardless of the order they completed in. A nil ctx means
// context.Background().
func (l *Lab) Run(ctx context.Context, jobs []Job) []JobResult {
	return l.RunEmit(ctx, jobs, nil)
}

// RunEmit is Run with streaming: emit is invoked in strict submission
// order as soon as each result's predecessors have all completed — the
// deterministic merge. Writing output from emit therefore yields
// byte-identical streams at any parallelism. Calls to emit are
// serialized. A nil emit makes RunEmit equivalent to Run.
func (l *Lab) RunEmit(ctx context.Context, jobs []Job, emit func(JobResult)) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(jobs)
	results := make([]JobResult, n)
	if n == 0 {
		return results
	}

	var (
		mu   sync.Mutex // guards results, done, next, and both callbacks
		done = make([]bool, n)
		next int
	)
	complete := func(r JobResult) {
		mu.Lock()
		defer mu.Unlock()
		results[r.Index] = r
		done[r.Index] = true
		if l.OnProgress != nil {
			l.OnProgress(r)
		}
		if emit != nil {
			for next < n && done[next] {
				emit(results[next])
				next++
			}
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < l.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				complete(l.runOne(ctx, jobs[i], i))
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job with panic recovery and accounting.
func (l *Lab) runOne(ctx context.Context, j Job, i int) (res JobResult) {
	res = JobResult{Index: i, ID: j.ID}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	acc := &simAccount{}
	tel := &telemetryAccount{}
	jctx := context.WithValue(context.WithValue(ctx, simKey{}, acc), telemetryKey{}, tel)
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		acc.mu.Lock()
		res.Sim = acc.d
		acc.mu.Unlock()
		tel.mu.Lock()
		res.Telemetry = tel.b
		tel.mu.Unlock()
		if r := recover(); r != nil {
			res.Value = nil
			res.Err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	res.Value, res.Err = j.Run(jctx)
	return res
}
