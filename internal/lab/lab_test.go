package lab

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aitax/internal/sim"
	"aitax/internal/telemetry"
)

// staggeredJobs builds n jobs whose completion order under a concurrent
// pool is scrambled (later jobs finish first) but whose values are pure
// functions of their index.
func staggeredJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("job%02d", i),
			Run: func(ctx context.Context) (any, error) {
				// Earlier jobs sleep longer so completion order inverts.
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestResultsInSubmissionOrder(t *testing.T) {
	jobs := staggeredJobs(12)
	for _, par := range []int{1, 4, 12} {
		l := &Lab{Parallelism: par}
		rs := l.Run(context.Background(), jobs)
		if len(rs) != 12 {
			t.Fatalf("parallel %d: %d results", par, len(rs))
		}
		for i, r := range rs {
			if r.Index != i || r.ID != fmt.Sprintf("job%02d", i) || r.Value != i*i {
				t.Fatalf("parallel %d: result %d = %+v", par, i, r)
			}
			if r.Err != nil {
				t.Fatalf("parallel %d: job %d failed: %v", par, i, r.Err)
			}
			if r.Wall <= 0 {
				t.Fatalf("parallel %d: job %d has no wall-clock accounting", par, i)
			}
		}
	}
}

func TestDeterministicMergeAcrossParallelism(t *testing.T) {
	render := func(par int) string {
		var b strings.Builder
		l := &Lab{Parallelism: par}
		l.RunEmit(context.Background(), staggeredJobs(10), func(r JobResult) {
			fmt.Fprintf(&b, "%s=%v\n", r.ID, r.Value)
		})
		return b.String()
	}
	seq := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != seq {
			t.Fatalf("parallel %d emitted\n%s\nwant (sequential)\n%s", par, got, seq)
		}
	}
}

func TestEmitOrderDespiteInvertedCompletion(t *testing.T) {
	// Job 0 blocks until job 1 has finished, so completion order is
	// provably 1 then 0 — emission must still be 0 then 1.
	oneDone := make(chan struct{})
	jobs := []Job{
		{ID: "a", Run: func(ctx context.Context) (any, error) {
			<-oneDone
			return "a", nil
		}},
		{ID: "b", Run: func(ctx context.Context) (any, error) {
			defer close(oneDone)
			return "b", nil
		}},
	}
	var emitted []string
	var completed []string
	l := &Lab{
		Parallelism: 2,
		OnProgress:  func(r JobResult) { completed = append(completed, r.ID) },
	}
	l.RunEmit(context.Background(), jobs, func(r JobResult) {
		emitted = append(emitted, r.ID)
	})
	if got := strings.Join(completed, ","); got != "b,a" {
		t.Fatalf("completion order = %s, want b,a", got)
	}
	if got := strings.Join(emitted, ","); got != "a,b" {
		t.Fatalf("emit order = %s, want a,b", got)
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := []Job{
		{ID: "ok1", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{ID: "boom", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{ID: "ok2", Run: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	l := &Lab{Parallelism: 3}
	rs := l.Run(context.Background(), jobs)
	if rs[0].Err != nil || rs[0].Value != 1 || rs[2].Err != nil || rs[2].Value != 2 {
		t.Fatalf("healthy jobs disturbed: %+v", rs)
	}
	var pe *PanicError
	if !errors.As(rs[1].Err, &pe) {
		t.Fatalf("panic err = %v, want *PanicError", rs[1].Err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
	if rs[1].Value != nil {
		t.Fatalf("panicked job has a value: %v", rs[1].Value)
	}
	if !strings.Contains(rs[1].Err.Error(), "kaboom") {
		t.Fatalf("error message hides panic: %v", rs[1].Err)
	}
}

func TestNilRunIsAnErrorResultNotACrash(t *testing.T) {
	l := &Lab{Parallelism: 1}
	rs := l.Run(context.Background(), []Job{{ID: "nil"}})
	var pe *PanicError
	if !errors.As(rs[0].Err, &pe) {
		t.Fatalf("nil Run err = %v, want *PanicError", rs[0].Err)
	}
}

func TestCancellationSkipsUnstartedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("j%d", i),
			Run: func(ctx context.Context) (any, error) {
				ran.Add(1)
				if i == 0 {
					cancel() // first job cancels the rest
				}
				return i, nil
			},
		}
	}
	l := &Lab{Parallelism: 1}
	rs := l.Run(ctx, jobs)
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran after cancellation, want 1", got)
	}
	if rs[0].Err != nil || rs[0].Value != 0 {
		t.Fatalf("first job = %+v", rs[0])
	}
	for _, r := range rs[1:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("skipped job %s err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
}

func TestErrorsPassThrough(t *testing.T) {
	sentinel := errors.New("measurement failed")
	l := &Lab{}
	rs := l.Run(context.Background(), []Job{
		{ID: "bad", Run: func(ctx context.Context) (any, error) { return nil, sentinel }},
	})
	if !errors.Is(rs[0].Err, sentinel) {
		t.Fatalf("err = %v", rs[0].Err)
	}
}

func TestReportSim(t *testing.T) {
	l := &Lab{}
	rs := l.Run(context.Background(), []Job{
		{ID: "sim", Run: func(ctx context.Context) (any, error) {
			ReportSim(ctx, 3*time.Millisecond)
			ReportSim(ctx, 2*time.Millisecond)
			return nil, nil
		}},
		{ID: "silent", Run: func(ctx context.Context) (any, error) { return nil, nil }},
	})
	if rs[0].Sim != 5*time.Millisecond {
		t.Fatalf("sim time = %v, want 5ms", rs[0].Sim)
	}
	if rs[1].Sim != 0 {
		t.Fatalf("silent job sim time = %v, want 0", rs[1].Sim)
	}
	// Outside a job, ReportSim must be a harmless no-op.
	ReportSim(context.Background(), time.Second)
}

func TestZeroJobsAndDefaults(t *testing.T) {
	l := &Lab{}
	if rs := l.Run(nil, nil); len(rs) != 0 {
		t.Fatalf("results = %v", rs)
	}
	if got := l.workers(100); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
	if got := (&Lab{Parallelism: 16}).workers(3); got != 3 {
		t.Fatalf("workers capped = %d, want 3", got)
	}
}

func TestReportTelemetryAndMerge(t *testing.T) {
	mkJob := func(id string, calls float64) Job {
		return Job{ID: id, Run: func(ctx context.Context) (any, error) {
			eng := sim.NewEngine()
			tr := telemetry.NewTracer(eng.Now)
			sp := tr.Start(id, "test", telemetry.TrackCPU, nil)
			sp.End()
			reg := telemetry.NewRegistry()
			reg.Add("calls_total", calls)
			reg.Observe("lat_ms", calls)
			ReportTelemetry(ctx, &telemetry.Bundle{Spans: tr.Spans(), Registry: reg})
			return id, nil
		}}
	}
	jobs := []Job{mkJob("a", 1), mkJob("b", 2), mkJob("c", 3)}

	merged := func(parallelism int) *telemetry.Bundle {
		l := &Lab{Parallelism: parallelism}
		return MergeTelemetry(l.Run(context.Background(), jobs))
	}
	seq, par := merged(1), merged(8)
	if len(seq.Spans) != 3 || len(par.Spans) != 3 {
		t.Fatalf("merged spans = %d/%d, want 3", len(seq.Spans), len(par.Spans))
	}
	// Submission-order merge: span order must match job order at any
	// parallelism.
	for i, want := range []string{"a", "b", "c"} {
		if seq.Spans[i].Name != want || par.Spans[i].Name != want {
			t.Fatalf("span %d = %q/%q, want %q", i, seq.Spans[i].Name, par.Spans[i].Name, want)
		}
	}
	var w1, w2 bytes.Buffer
	if err := seq.Registry.WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := par.Registry.WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatal("metrics merge depends on parallelism")
	}
	if seq.Registry.Counter("calls_total") != 6 {
		t.Fatalf("merged counter = %v", seq.Registry.Counter("calls_total"))
	}
}

func TestReportTelemetryOutsideJobIsNoOp(t *testing.T) {
	ReportTelemetry(context.Background(), &telemetry.Bundle{Registry: telemetry.NewRegistry()})
}
