package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aitax/internal/telemetry"
)

// Objective is one latency SLO: Target of the objective's requests must
// finish under Latency. A rejected request always breaches (the client
// got nothing). Model "" aggregates every model.
type Objective struct {
	// Model is the Table-I model name this objective covers; empty
	// means all models together.
	Model string
	// Latency is the per-request latency threshold.
	Latency time.Duration
	// Target is the required compliant fraction in (0,1), e.g. 0.99.
	Target float64
}

// Name returns the objective's display name.
func (o Objective) Name() string {
	if o.Model == "" {
		return "all models"
	}
	return o.Model
}

// Budget returns the error budget 1-Target.
func (o Objective) Budget() float64 { return 1 - o.Target }

// describe renders the objective's contract, e.g. "99% < 250ms".
func (o Objective) describe() string {
	return fmt.Sprintf("%s%% < %s", trimFloat(o.Target*100), o.Latency)
}

// trimFloat renders a float without trailing zeros (99, 99.9),
// rounding away binary artifacts (99.9/100*100 = 99.90000000000001).
func trimFloat(v float64) string {
	return strconv.FormatFloat(math.Round(v*1e9)/1e9, 'f', -1, 64)
}

// ErrBadObjective tags every SLO-spec parse error, so the edges can
// recognize bad input with errors.Is instead of matching message text.
var ErrBadObjective = errors.New("obs: bad slo spec")

// ParseObjectives parses an SLO spec of the form
// "MODEL=LATENCY@TARGET[,...]", e.g.
//
//	"MobileNet 1.0 v1=250ms@99,all=400ms@95"
//
// LATENCY uses Go duration syntax; TARGET is a percentage (99, 99.9).
// MODEL "all" or "*" covers every model in aggregate. All errors wrap
// ErrBadObjective; NaN targets are rejected explicitly (NaN compares
// false against both range bounds and would otherwise slip through).
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%w: %q: want MODEL=LATENCY@TARGET, e.g. all=250ms@99", ErrBadObjective, part)
		}
		latStr, pctStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("%w: %q: missing @TARGET percentage", ErrBadObjective, part)
		}
		lat, err := time.ParseDuration(strings.TrimSpace(latStr))
		if err != nil || lat <= 0 {
			return nil, fmt.Errorf("%w: %q: bad latency %q", ErrBadObjective, part, latStr)
		}
		pct, err := strconv.ParseFloat(strings.TrimSpace(pctStr), 64)
		if err != nil || math.IsNaN(pct) || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("%w: %q: target must be a percentage in (0,100), got %q", ErrBadObjective, part, pctStr)
		}
		model := strings.TrimSpace(name)
		if model == "all" || model == "*" {
			model = ""
		}
		// Round so "99.9" yields the same double as the 0.999 literal
		// (pct/100 alone gives 0.9990000000000001).
		target := math.Round(pct/100*1e12) / 1e12
		out = append(out, Objective{Model: model, Latency: lat, Target: target})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty spec", ErrBadObjective)
	}
	return out, nil
}

// GoodSeries and BadSeries name the per-objective compliance counters
// the serving bridges record into the Recorder and the Monitor reads
// back out of closed rows.
func GoodSeries(o Objective) string {
	return telemetry.Labeled("slo_good", "objective", o.Name())
}

// BadSeries is the breach counter's series name for o.
func BadSeries(o Objective) string {
	return telemetry.Labeled("slo_bad", "objective", o.Name())
}

// Alert is one burn-rate alert: the moment an objective's short and
// long horizons both crossed a severity threshold it was not already
// at.
type Alert struct {
	// Window is the index of the window whose close fired the alert;
	// At is that window's end time.
	Window    int
	At        time.Duration
	Objective string
	// Severity is "page" or "warn".
	Severity string
	// Short and Long are the burn rates over the two horizons when the
	// alert fired (1.0 = burning the budget exactly as fast as the
	// target allows).
	Short, Long float64
}

// BurnSample is one window's burn-rate evaluation, kept when the
// monitor is asked to retain history (the simulator path, for Chrome
// counter tracks).
type BurnSample struct {
	Window      int
	Objective   string
	Short, Long float64
}

// winCount is one window's good/bad tally inside an objState ring.
type winCount struct {
	tag       int
	good, bad float64
}

type objState struct {
	obj      Objective
	ring     []winCount // len = monitor Long horizon
	good     float64    // run totals
	bad      float64
	severity int // 0 ok, 1 warn, 2 page — current sustained level
	pages    int
	warns    int
	// lastShort/lastLong are the most recent horizon burn rates — the
	// dashboard's live read.
	lastShort, lastLong float64
}

// Monitor evaluates SLO error-budget burn rates over two horizons — the
// multiwindow burn-rate alerting rule: a short horizon catches fast
// burns quickly, the long horizon keeps slow burns from hiding between
// spikes, and requiring both to breach suppresses one-window blips.
// Feed it closed recorder rows via OnRow (wire it as, or inside, the
// recorder's OnClose sink).
type Monitor struct {
	// Objectives are the monitored SLOs.
	Objectives []Objective
	// Window is the recorder's window width (for alert timestamps).
	Window time.Duration
	// Short and Long are the burn horizons in windows (defaults 4, 24).
	Short, Long int
	// Page and Warn are the burn-rate thresholds (defaults 10, 2): page
	// when both horizons burn ≥ Page, warn at ≥ Warn.
	Page, Warn float64
	// KeepHistory retains per-window burn samples (Burns) — bounded by
	// run length, so enable it only on the finite simulator path.
	KeepHistory bool

	mu     sync.Mutex
	states []*objState
	alerts []Alert
	burns  []BurnSample
}

// NewMonitor returns a monitor over the given objectives with the
// default horizons and thresholds.
func NewMonitor(objectives []Objective, window time.Duration) *Monitor {
	return &Monitor{
		Objectives: objectives,
		Window:     window,
		Short:      4,
		Long:       24,
		Page:       10,
		Warn:       2,
	}
}

func (m *Monitor) initLocked() {
	if m.states != nil {
		return
	}
	if m.Short <= 0 {
		m.Short = 4
	}
	if m.Long < m.Short {
		m.Long = max(24, m.Short)
	}
	if m.Page <= 0 {
		m.Page = 10
	}
	if m.Warn <= 0 {
		m.Warn = 2
	}
	for _, o := range m.Objectives {
		ring := make([]winCount, m.Long)
		for i := range ring {
			ring[i].tag = -1
		}
		m.states = append(m.states, &objState{obj: o, ring: ring})
	}
}

// Match reports whether the objective covers a request for model, and
// whether the request breached it (rejected, or over the threshold).
func (o Objective) Match(model string, latency time.Duration, rejected bool) (covered, breached bool) {
	if o.Model != "" && o.Model != model {
		return false, false
	}
	return true, rejected || latency > o.Latency
}

// OnRow consumes one closed recorder row: it reads each objective's
// good/bad counters, updates the burn horizons, and fires alerts on
// severity transitions. Rows must arrive in index order (the recorder
// guarantees this).
func (m *Monitor) OnRow(row Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	for _, st := range m.states {
		good := row.Counters[GoodSeries(st.obj)]
		bad := row.Counters[BadSeries(st.obj)]
		st.good += good
		st.bad += bad
		slot := row.Index % m.Long
		st.ring[slot] = winCount{tag: row.Index, good: good, bad: bad}

		short := m.burnLocked(st, row.Index, m.Short)
		long := m.burnLocked(st, row.Index, m.Long)
		st.lastShort, st.lastLong = short, long
		if m.KeepHistory {
			m.burns = append(m.burns, BurnSample{
				Window: row.Index, Objective: st.obj.Name(), Short: short, Long: long,
			})
		}
		level := 0
		switch {
		case short >= m.Page && long >= m.Page:
			level = 2
		case short >= m.Warn && long >= m.Warn:
			level = 1
		}
		if level > st.severity {
			sev := "warn"
			if level == 2 {
				sev = "page"
			}
			if level == 2 {
				st.pages++
			} else {
				st.warns++
			}
			m.alerts = append(m.alerts, Alert{
				Window:    row.Index,
				At:        time.Duration(row.Index+1) * m.Window,
				Objective: st.obj.Name(),
				Severity:  sev,
				Short:     short,
				Long:      long,
			})
		}
		st.severity = level
	}
}

// burnLocked computes the burn rate over the lastN windows ending at
// cur: (bad / (good+bad)) / error budget. No traffic burns nothing.
func (m *Monitor) burnLocked(st *objState, cur, lastN int) float64 {
	var good, bad float64
	for w := max(cur-lastN+1, 0); w <= cur; w++ {
		c := st.ring[w%m.Long]
		if c.tag == w {
			good += c.good
			bad += c.bad
		}
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := st.obj.Budget()
	if budget <= 0 {
		return 0
	}
	return (bad / total) / budget
}

// ObjectiveSummary is one objective's end-of-run accounting.
type ObjectiveSummary struct {
	Objective  Objective
	Good, Bad  float64
	Compliance float64 // good / (good+bad); 1 with no traffic
	BudgetUsed float64 // bad over the whole run ÷ allowed bad
	Pages      int
	Warns      int
	Pass       bool
}

// Summaries returns the per-objective accounting, in Objectives order.
func (m *Monitor) Summaries() []ObjectiveSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	out := make([]ObjectiveSummary, 0, len(m.states))
	for _, st := range m.states {
		s := ObjectiveSummary{
			Objective:  st.obj,
			Good:       st.good,
			Bad:        st.bad,
			Compliance: 1,
			Pages:      st.pages,
			Warns:      st.warns,
		}
		if total := st.good + st.bad; total > 0 {
			s.Compliance = st.good / total
			if b := st.obj.Budget(); b > 0 {
				s.BudgetUsed = (st.bad / total) / b
			}
		}
		s.Pass = s.Compliance >= st.obj.Target
		out = append(out, s)
	}
	return out
}

// Alerts returns the fired alerts, in firing order.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Burns returns the retained per-window burn samples (KeepHistory).
func (m *Monitor) Burns() []BurnSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]BurnSample(nil), m.burns...)
}

// CurrentBurn returns the latest evaluated burn rates per objective
// name — the dashboard's live read. Objectives with no evaluated
// windows yet report zeros.
func (m *Monitor) CurrentBurn() map[string][2]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.initLocked()
	out := make(map[string][2]float64, len(m.states))
	for _, st := range m.states {
		out[st.obj.Name()] = [2]float64{st.lastShort, st.lastLong}
	}
	return out
}

// Export writes the monitor's state into a metrics registry as
// aitax_slo_* series.
func (m *Monitor) Export(reg *telemetry.Registry) {
	for _, s := range m.Summaries() {
		name := s.Objective.Name()
		reg.Add(telemetry.Labeled("aitax_slo_good_total", "objective", name), s.Good)
		reg.Add(telemetry.Labeled("aitax_slo_bad_total", "objective", name), s.Bad)
		reg.Set(telemetry.Labeled("aitax_slo_compliance", "objective", name), s.Compliance)
		reg.Set(telemetry.Labeled("aitax_slo_budget_used", "objective", name), s.BudgetUsed)
		reg.Add(telemetry.Labeled("aitax_slo_alerts_total", "objective", name, "severity", "page"), float64(s.Pages))
		reg.Add(telemetry.Labeled("aitax_slo_alerts_total", "objective", name, "severity", "warn"), float64(s.Warns))
	}
}

// WriteReport renders the pass/fail SLO section appended to the load
// report — deterministic, golden-diffed in CI. Burn rate 1.0 means the
// error budget is being spent exactly as fast as the target allows.
func (m *Monitor) WriteReport(w io.Writer) {
	m.mu.Lock()
	m.initLocked()
	short, long, page, warn := m.Short, m.Long, m.Page, m.Warn
	m.mu.Unlock()

	fmt.Fprintf(w, "\nslo (windows of %s; page when %d- and %d-window burn >= %s, warn >= %s)\n",
		m.Window, short, long, trimFloat(page), trimFloat(warn))
	for _, s := range m.Summaries() {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %-24s %-12s %s  compliance %7.3f%%  budget used %6.1f%%  good %.0f bad %.0f  pages %d warns %d\n",
			s.Objective.Name(), s.Objective.describe(), verdict,
			s.Compliance*100, s.BudgetUsed*100, s.Good, s.Bad, s.Pages, s.Warns)
	}
	alerts := m.Alerts()
	sortAlerts(alerts)
	if len(alerts) == 0 {
		fmt.Fprintf(w, "  alerts: none\n")
		return
	}
	fmt.Fprintf(w, "  alerts (%d):\n", len(alerts))
	for _, a := range alerts {
		fmt.Fprintf(w, "    t=%-10s %-4s %-24s short %5.1fx long %5.1fx\n",
			a.At, a.Severity, a.Objective, a.Short, a.Long)
	}
}

// sortAlerts orders alerts by (window, objective) — already firing
// order, kept for safety when merging sources.
func sortAlerts(alerts []Alert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].Window != alerts[j].Window {
			return alerts[i].Window < alerts[j].Window
		}
		return alerts[i].Objective < alerts[j].Objective
	})
}
