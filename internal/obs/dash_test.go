package obs

import (
	"strings"
	"testing"
	"time"
)

// seedRecorder replays a tiny deterministic run into a recorder using
// the shared series-name contract, the way the serving bridges do.
func seedRecorder() *Recorder {
	r := NewRecorder(RecorderConfig{Window: 250 * time.Millisecond, Keep: 32})
	model := "MobileNet 1.0 v1"
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		lat := float64(10 + i%7)
		for _, m := range []string{model, AllModels} {
			r.Add(at, OfferedSeries(m), 1)
			r.Add(at, ServedSeries(m), 1)
			r.Observe(at, LatencySeries(m), lat)
			r.Observe(at, BatchSeries(m), float64(1+i%4))
			r.Observe(at, DepthSeries(m), float64(i%3))
			r.Observe(at, BatchWaitSeries(m), 2.5)
			r.Observe(at, DispatchWaitSeries(m), 0.5)
		}
		r.Add(at, StageSeries("pre"), 1.5)
		r.Add(at, StageSeries("infer"), 8)
		r.Add(at, StageSeries("post"), 0.5)
	}
	r.Add(3900*time.Millisecond, RejectedSeries(model), 3)
	r.Add(3900*time.Millisecond, RejectedSeries(AllModels), 3)
	r.Add(3900*time.Millisecond, OfferedSeries(model), 3)
	r.Add(3900*time.Millisecond, OfferedSeries(AllModels), 3)
	return r
}

func TestDashboardRenderDeterministic(t *testing.T) {
	render := func() string {
		rec := seedRecorder()
		obj := Objective{Model: "MobileNet 1.0 v1", Latency: 250 * time.Millisecond, Target: 0.99}
		mon := NewMonitor([]Objective{obj}, rec.Window())
		feed(mon, obj, 0, 8, 40, 0)
		d := &Dashboard{Rec: rec, Mon: mon, Models: []string{"MobileNet 1.0 v1"}}
		return d.Render(4 * time.Second)
	}
	first := render()
	if first != render() {
		t.Fatal("dashboard render not deterministic")
	}
	for _, want := range []string{
		"aitax-serve", "model", "MobileNet 1.0 v1", "all",
		"tax anatomy ms/req:", "pre", "infer", "batch-wait",
		"p99 trend", "slo MobileNet 1.0 v1", "OK",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, first)
		}
	}
	// The trend line must contain sparkline glyphs, and the rej% column
	// must reflect the final window's rejections.
	if !strings.ContainsAny(first, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparkline in dashboard:\n%s", first)
	}
}

func TestDashboardEmptyRecorder(t *testing.T) {
	d := &Dashboard{Rec: NewRecorder(RecorderConfig{})}
	out := d.Render(0)
	if !strings.Contains(out, "all") {
		t.Fatalf("empty dashboard should still print the aggregate row:\n%s", out)
	}
}
