package obs

import "aitax/internal/telemetry"

// Series-name contract shared by the two serving bridges (the
// virtual-time simulator and the wall-clock HTTP frontend) and their
// consumers (dashboard, SLO monitor, JSONL/Perfetto export). Both
// bridges record these exact names into a Recorder, so every consumer
// reads either path identically. AllModels is the cross-model
// aggregate each bridge records alongside the per-model series.
const AllModels = "all"

// LatencySeries is the per-model end-to-end latency histogram (ms).
func LatencySeries(model string) string {
	return telemetry.Labeled("latency_ms", "model", model)
}

// OfferedSeries counts arrivals (served + rejected) per model.
func OfferedSeries(model string) string {
	return telemetry.Labeled("offered", "model", model)
}

// ServedSeries counts completed requests per model.
func ServedSeries(model string) string {
	return telemetry.Labeled("served", "model", model)
}

// RejectedSeries counts admission rejections per model.
func RejectedSeries(model string) string {
	return telemetry.Labeled("rejected", "model", model)
}

// ShedSeries counts requests the brownout controller turned away by
// QoS class at admission — deliberate load shedding, kept apart from
// queue-full rejections so the degradation is attributable.
func ShedSeries(model string) string {
	return telemetry.Labeled("shed", "model", model)
}

// CancelledSeries counts queued requests whose caller abandoned them
// before dispatch (context cancellation) — removed from the batch, not
// served, not rejected.
func CancelledSeries(model string) string {
	return telemetry.Labeled("cancelled", "model", model)
}

// BatchSeries is the batch-size histogram (one observation per served
// request, valued at its batch's size).
func BatchSeries(model string) string {
	return telemetry.Labeled("batch", "model", model)
}

// DepthSeries is the queue-depth-at-arrival histogram.
func DepthSeries(model string) string {
	return telemetry.Labeled("depth", "model", model)
}

// BatchWaitSeries is the time-in-queue-until-batch-dispatch histogram
// (ms) — the batching half of the serving tax.
func BatchWaitSeries(model string) string {
	return telemetry.Labeled("batch_wait_ms", "model", model)
}

// DispatchWaitSeries is the dispatch-to-start wait histogram (ms) —
// contention for the accelerator.
func DispatchWaitSeries(model string) string {
	return telemetry.Labeled("dispatch_wait_ms", "model", model)
}

// Stages are the Table-III tax-anatomy stages the recorder tracks as
// per-window ms sums, in display order.
var Stages = []string{"pre", "framework", "rpc", "infer", "post"}

// StageSeries is the per-stage time counter (ms summed over the
// window's served requests), aggregated across models.
func StageSeries(stage string) string {
	return telemetry.Labeled("stage_ms", "stage", stage)
}
