package obs

import (
	"fmt"
	"strings"
	"time"
)

// sparkRunes are the eight-level bar glyphs for trend sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-height bar chart, scaled to the
// series' own maximum (an all-zero series renders as all-minimum bars).
func Sparkline(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i < 0 {
				i = 0
			}
			if i > len(sparkRunes)-1 {
				i = len(sparkRunes) - 1
			}
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// Dashboard renders a Recorder (+ optional Monitor) as a terminal text
// snapshot: the `aitax-serve -watch` screen. Rendering is a pure
// function of the recorder/monitor state, so the simulator path golden-
// diffs the exact bytes the live dashboard would show.
type Dashboard struct {
	Rec *Recorder
	Mon *Monitor
	// Models are the per-model rows, in display order (the bridges pass
	// the config's model list); the AllModels aggregate row is appended
	// automatically.
	Models []string
	// Windows is the rolling horizon in recorder windows (default 8).
	Windows int
	// Spark is the sparkline width in windows (default 32).
	Spark int
}

// Render returns the dashboard text. now is the current time on the
// recorder's clock (virtual in the simulator, since-start on the HTTP
// path) — shown in the header, not used for bucketing.
func (d *Dashboard) Render(now time.Duration) string {
	windows := d.Windows
	if windows <= 0 {
		windows = 8
	}
	spark := d.Spark
	if spark <= 0 {
		spark = 32
	}
	var sb strings.Builder
	span := time.Duration(windows) * d.Rec.Window()
	fmt.Fprintf(&sb, "aitax-serve  t=%-12s rolling last %s (%d windows of %s)\n",
		now, span, windows, d.Rec.Window())
	fmt.Fprintf(&sb, "%-24s %8s %8s %8s %8s %6s %6s %6s\n",
		"model", "qps", "p50ms", "p90ms", "p99ms", "rej%", "batch", "depth")

	rows := append(append([]string{}, d.Models...), AllModels)
	for _, m := range rows {
		lat := d.Rec.MergedHist(LatencySeries(m), windows)
		offered := d.Rec.SumCounter(OfferedSeries(m), windows)
		served := d.Rec.SumCounter(ServedSeries(m), windows)
		rejected := d.Rec.SumCounter(RejectedSeries(m), windows)
		batch := d.Rec.MergedHist(BatchSeries(m), windows)
		depth := d.Rec.MergedHist(DepthSeries(m), windows)
		qps := 0.0
		if secs := span.Seconds(); secs > 0 {
			qps = served / secs
		}
		rejPct := 0.0
		if offered > 0 {
			rejPct = rejected / offered * 100
		}
		fmt.Fprintf(&sb, "%-24s %8.1f %8.2f %8.2f %8.2f %6.1f %6.2f %6.2f\n",
			m, qps, lat.Quantile(0.50), lat.Quantile(0.90), lat.Quantile(0.99),
			rejPct, batch.Mean(), depth.Mean())
	}

	// Table-III anatomy: mean ms/request per stage over the horizon.
	served := d.Rec.SumCounter(ServedSeries(AllModels), windows)
	sb.WriteString("tax anatomy ms/req:")
	for _, st := range Stages {
		per := 0.0
		if served > 0 {
			per = d.Rec.SumCounter(StageSeries(st), windows) / served
		}
		fmt.Fprintf(&sb, "  %s %.2f", st, per)
	}
	bw := d.Rec.MergedHist(BatchWaitSeries(AllModels), windows)
	dw := d.Rec.MergedHist(DispatchWaitSeries(AllModels), windows)
	fmt.Fprintf(&sb, "  batch-wait %.2f  dispatch-wait %.2f\n", bw.Mean(), dw.Mean())

	fmt.Fprintf(&sb, "p99 trend  %s\n", Sparkline(d.Rec.RecentQuantiles(LatencySeries(AllModels), 0.99, spark)))

	if d.Mon != nil {
		burns := d.Mon.CurrentBurn()
		for _, o := range d.Mon.Objectives {
			b := burns[o.Name()]
			state := "OK"
			switch {
			case b[0] >= d.Mon.Page && b[1] >= d.Mon.Page:
				state = "PAGE"
			case b[0] >= d.Mon.Warn && b[1] >= d.Mon.Warn:
				state = "WARN"
			}
			fmt.Fprintf(&sb, "slo %-24s %-12s burn short %5.1fx long %5.1fx  %s\n",
				o.Name(), o.describe(), b[0], b[1], state)
		}
	}
	if dropped := d.Rec.Dropped(); dropped > 0 {
		fmt.Fprintf(&sb, "dropped %d late observations\n", dropped)
	}
	return sb.String()
}
