package obs

import (
	"sync"
	"testing"
)

// TestMergeEmptyIntoPopulated and its inverse: merging across the empty
// boundary must neither corrupt extremes (the empty side's zero min/max
// must not leak) nor change counts.
func TestMergeEmptyIntoPopulated(t *testing.T) {
	pop := NewHistogram(nil)
	for _, v := range []float64{5, 7, 11} {
		pop.Observe(v)
	}
	empty := NewHistogram(nil)

	// populated.Merge(empty) is a no-op.
	pop.Merge(empty)
	if pop.Count() != 3 || pop.Min() != 5 || pop.Max() != 11 || pop.Sum() != 23 {
		t.Fatalf("merge(empty) disturbed state: %+v", pop.Summary())
	}

	// empty.Merge(populated) adopts the populated side exactly,
	// including extremes (min must become 5, not stay at the empty 0).
	empty.Merge(pop)
	if empty.Count() != 3 || empty.Min() != 5 || empty.Max() != 11 || empty.Sum() != 23 {
		t.Fatalf("empty.Merge(populated) wrong: %+v", empty.Summary())
	}
	// Quantiles of the merged copy match the original.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if empty.Quantile(q) != pop.Quantile(q) {
			t.Fatalf("q%.2f diverged: %g vs %g", q, empty.Quantile(q), pop.Quantile(q))
		}
	}

	// empty.Merge(empty) stays empty.
	e2 := NewHistogram(nil)
	e2.Merge(NewHistogram(nil))
	if e2.Count() != 0 || e2.Min() != 0 || e2.Max() != 0 {
		t.Fatalf("empty+empty = %+v", e2.Summary())
	}
	// Merging nil is a no-op.
	pop.Merge(nil)
	if pop.Count() != 3 {
		t.Fatal("merge(nil) disturbed state")
	}
}

// TestMergeCompatibleWindows: two histograms recorded over different
// (mismatched) windows of the same series — disjoint value ranges,
// separately allocated but value-equal bounds slices — merge exactly.
func TestMergeCompatibleWindows(t *testing.T) {
	boundsA := []float64{1, 2, 4, 8, 16}
	boundsB := []float64{1, 2, 4, 8, 16} // equal values, different array
	a, b := NewHistogram(boundsA), NewHistogram(boundsB)
	for i := 0; i < 100; i++ {
		a.Observe(float64(i%4) + 1) // window 1: 1..4
	}
	for i := 0; i < 50; i++ {
		b.Observe(float64(i%8) + 9) // window 2: 9..16
	}
	a.Merge(b)
	if a.Count() != 150 {
		t.Fatalf("count %d, want 150", a.Count())
	}
	if a.Min() != 1 || a.Max() != 16 {
		t.Fatalf("extremes [%g, %g], want [1, 16]", a.Min(), a.Max())
	}
	// Integer-valued observations make float sums exact.
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i%4) + 1
	}
	for i := 0; i < 50; i++ {
		wantSum += float64(i%8) + 9
	}
	if a.Sum() != wantSum {
		t.Fatalf("sum %g, want %g", a.Sum(), wantSum)
	}
}

// TestMergeIncompatibleBoundsPanics: silent miscounting is the failure
// mode being guarded — both a length mismatch and a same-length value
// mismatch must panic.
func TestMergeIncompatibleBoundsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("length mismatch", func() {
		a, b := NewHistogram([]float64{1, 2}), NewHistogram([]float64{1, 2, 3})
		b.Observe(1)
		a.Merge(b)
	})
	mustPanic("value mismatch", func() {
		a, b := NewHistogram([]float64{1, 2, 4}), NewHistogram([]float64{1, 2, 5})
		b.Observe(1)
		a.Merge(b)
	})
}

// TestNWayMergeExact: N goroutines each fold their own slice of an
// integer-valued stream into a private histogram (run under -race by
// make test); merging the N histograms in a fixed order must reproduce
// the sequential single-histogram count, sum, min and max exactly, and
// byte-for-byte identical bucket quantiles.
func TestNWayMergeExact(t *testing.T) {
	const (
		workers = 8
		perW    = 10_000
	)
	value := func(w, i int) float64 {
		return float64((w*perW+i)%977) + 1 // integers: float sums are exact
	}

	seq := NewHistogram(nil)
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			seq.Observe(value(w, i))
		}
	}

	parts := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		parts[w] = NewHistogram(nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				parts[w].Observe(value(w, i))
			}
		}()
	}
	wg.Wait()

	merged := NewHistogram(nil)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != seq.Count() {
		t.Fatalf("count %d, want %d", merged.Count(), seq.Count())
	}
	if merged.Sum() != seq.Sum() {
		t.Fatalf("sum %g, want %g (integer stream must merge exactly)", merged.Sum(), seq.Sum())
	}
	if merged.Min() != seq.Min() || merged.Max() != seq.Max() {
		t.Fatalf("extremes [%g, %g], want [%g, %g]", merged.Min(), merged.Max(), seq.Min(), seq.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != seq.Quantile(q) {
			t.Fatalf("q%g %g, want %g", q, merged.Quantile(q), seq.Quantile(q))
		}
	}
	// Merge order must not matter for any of the above: reverse order.
	rev := NewHistogram(nil)
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	if rev.Count() != seq.Count() || rev.Sum() != seq.Sum() ||
		rev.Min() != seq.Min() || rev.Max() != seq.Max() {
		t.Fatal("reverse-order merge diverged on an integer stream")
	}
}
