package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Row is one closed aggregation window, the unit of the time-series
// export: every JSONL line, Chrome counter sample and SLO burn-rate
// evaluation derives from a Row. Maps keep export deterministic
// (encoding/json sorts map keys).
type Row struct {
	// Index is the window's ordinal: the window covers
	// [Index*width, (Index+1)*width).
	Index int `json:"window"`
	// StartMS / EndMS are the window bounds in milliseconds from the
	// recorder's time origin (virtual time in the simulator, time since
	// server start on the HTTP path).
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
	// Counters holds the window's counter sums; only series touched in
	// this window appear.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Hists holds the window's histogram summaries.
	Hists map[string]HistSummary `json:"hists,omitempty"`
}

// RecorderConfig fixes a recorder's windowing policy.
type RecorderConfig struct {
	// Window is the aggregation window width. Zero means 250ms.
	Window time.Duration
	// Keep is how many windows stay resident (the ring size); windows
	// older than that are closed and handed to OnClose. Zero means 64.
	Keep int
	// Bounds are the histogram bucket bounds (nil = DefaultBounds).
	Bounds []float64
	// OnClose, when set, receives every closed window in index order:
	// the streaming export hook (JSONL writer, SLO monitor, Chrome
	// counter tracks). Windows a run never observed into are skipped.
	OnClose func(Row)
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.Keep <= 0 {
		c.Keep = 64
	}
	if c.Bounds == nil {
		c.Bounds = DefaultBounds
	}
	return c
}

// counterRing is one counter series' ring of window cells. tag[i] names
// the window index occupying cell i, so stale cells are detected and
// lazily zeroed instead of sweeping the ring on every advance.
type counterRing struct {
	vals []float64
	tag  []int
}

// histRing is one histogram series' ring of window cells.
type histRing struct {
	hists []*Histogram
	tag   []int
}

// Recorder aggregates observations into fixed-width time windows held
// in a bounded ring: the streaming time-series store behind the
// dashboard, the SLO monitor and the JSONL/Perfetto exports. Memory is
// flat — Keep windows per series, fixed-bucket histograms — no matter
// how long the run. Steady-state recording into existing series does
// not allocate. Safe for concurrent use; determinism of the contents
// comes from deterministic inputs (the simulator replays outcomes in a
// fixed order).
type Recorder struct {
	cfg RecorderConfig

	mu       sync.Mutex
	head     int // highest window index observed; -1 before first obs
	closedTo int // windows below this have been closed (or skipped)
	counters map[string]*counterRing
	hists    map[string]*histRing
	names    []string // sorted union of series names, rebuilt when dirty
	dirty    bool
	dropped  int64 // observations older than the ring
}

// NewRecorder returns an empty recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		head:     -1,
		counters: make(map[string]*counterRing),
		hists:    make(map[string]*histRing),
	}
}

// Window returns the configured window width.
func (r *Recorder) Window() time.Duration { return r.cfg.Window }

// Head returns the highest window index observed so far (-1 when
// nothing has been recorded).
func (r *Recorder) Head() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Dropped reports observations discarded for being older than the ring.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// windowIndex maps a timestamp to its window ordinal.
func (r *Recorder) windowIndex(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / r.cfg.Window)
}

// advance moves the ring head to idx, closing every window that falls
// off the back. Caller holds r.mu.
func (r *Recorder) advance(idx int) {
	if idx <= r.head {
		return
	}
	// Windows < idx-Keep+1 can no longer take observations: close the
	// ones that ever held data ([closedTo, head]); the gap beyond head
	// (idle time) was never populated and is skipped.
	firstLive := idx - r.cfg.Keep + 1
	if firstLive > r.closedTo {
		if r.cfg.OnClose != nil {
			last := min(firstLive-1, r.head)
			for w := r.closedTo; w <= last; w++ {
				if row, ok := r.buildRowLocked(w); ok {
					r.cfg.OnClose(row)
				}
			}
		}
		r.closedTo = firstLive
	}
	r.head = idx
}

// Add accumulates v into the named counter series for the window
// containing at.
func (r *Recorder) Add(at time.Duration, name string, v float64) {
	idx := r.windowIndex(at)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance(idx)
	if idx < r.head-r.cfg.Keep+1 || idx < r.closedTo {
		r.dropped++
		return
	}
	c := r.counters[name]
	if c == nil {
		c = &counterRing{vals: make([]float64, r.cfg.Keep), tag: make([]int, r.cfg.Keep)}
		for i := range c.tag {
			c.tag[i] = -1
		}
		r.counters[name] = c
		r.dirty = true
	}
	slot := idx % r.cfg.Keep
	if c.tag[slot] != idx {
		c.tag[slot] = idx
		c.vals[slot] = 0
	}
	c.vals[slot] += v
}

// Observe records v into the named histogram series for the window
// containing at.
func (r *Recorder) Observe(at time.Duration, name string, v float64) {
	idx := r.windowIndex(at)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance(idx)
	if idx < r.head-r.cfg.Keep+1 || idx < r.closedTo {
		r.dropped++
		return
	}
	h := r.hists[name]
	if h == nil {
		h = &histRing{hists: make([]*Histogram, r.cfg.Keep), tag: make([]int, r.cfg.Keep)}
		for i := range h.tag {
			h.tag[i] = -1
		}
		r.hists[name] = h
		r.dirty = true
	}
	slot := idx % r.cfg.Keep
	if h.tag[slot] != idx {
		h.tag[slot] = idx
		if h.hists[slot] == nil {
			h.hists[slot] = NewHistogram(r.cfg.Bounds)
		} else {
			h.hists[slot].Reset()
		}
	}
	h.hists[slot].Observe(v)
}

// Touch creates the named histogram series (with an empty histogram in
// at's window) without recording an observation, so a prewarmed
// harness's first window carries the full series set instead of being
// an outlier missing most of it. Existing series are left untouched.
func (r *Recorder) Touch(at time.Duration, name string) {
	idx := r.windowIndex(at)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance(idx)
	if idx < r.head-r.cfg.Keep+1 || idx < r.closedTo {
		return
	}
	h := r.hists[name]
	if h == nil {
		h = &histRing{hists: make([]*Histogram, r.cfg.Keep), tag: make([]int, r.cfg.Keep)}
		for i := range h.tag {
			h.tag[i] = -1
		}
		r.hists[name] = h
		r.dirty = true
	}
	slot := idx % r.cfg.Keep
	if h.tag[slot] != idx {
		h.tag[slot] = idx
		if h.hists[slot] == nil {
			h.hists[slot] = NewHistogram(r.cfg.Bounds)
		} else {
			h.hists[slot].Reset()
		}
	}
}

// sortedNamesLocked returns the union of series names, sorted.
func (r *Recorder) sortedNamesLocked() []string {
	if r.dirty {
		r.names = r.names[:0]
		for k := range r.counters {
			r.names = append(r.names, k)
		}
		for k := range r.hists {
			r.names = append(r.names, k)
		}
		sort.Strings(r.names)
		r.dirty = false
	}
	return r.names
}

// buildRowLocked assembles the export row for window w; ok is false
// when no series observed into w.
func (r *Recorder) buildRowLocked(w int) (Row, bool) {
	slot := w % r.cfg.Keep
	row := Row{
		Index:   w,
		StartMS: float64(w) * float64(r.cfg.Window) / float64(time.Millisecond),
		EndMS:   float64(w+1) * float64(r.cfg.Window) / float64(time.Millisecond),
	}
	for _, name := range r.sortedNamesLocked() {
		if c, ok := r.counters[name]; ok && c.tag[slot] == w {
			if row.Counters == nil {
				row.Counters = make(map[string]float64)
			}
			row.Counters[name] = c.vals[slot]
		}
		if h, ok := r.hists[name]; ok && h.tag[slot] == w && h.hists[slot].Count() > 0 {
			if row.Hists == nil {
				row.Hists = make(map[string]HistSummary)
			}
			row.Hists[name] = h.hists[slot].Summary()
		}
	}
	return row, row.Counters != nil || row.Hists != nil
}

// Flush closes every remaining window in index order. Call once at the
// end of a run (the simulator) or at server shutdown; the recorder
// remains usable, but flushed windows reject late observations.
func (r *Recorder) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.OnClose != nil {
		for w := r.closedTo; w <= r.head; w++ {
			if row, ok := r.buildRowLocked(w); ok {
				r.cfg.OnClose(row)
			}
		}
	}
	r.closedTo = r.head + 1
}

// MergedHist merges the named histogram series over the lastN live
// windows (ending at the head) into one histogram — the rolling
// percentile read the dashboard uses. Always returns a histogram,
// possibly empty.
func (r *Recorder) MergedHist(name string, lastN int) *Histogram {
	out := NewHistogram(r.cfg.Bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok || r.head < 0 {
		return out
	}
	for w := max(r.head-lastN+1, 0); w <= r.head; w++ {
		slot := w % r.cfg.Keep
		if h.tag[slot] == w {
			out.Merge(h.hists[slot])
		}
	}
	return out
}

// SumCounter sums the named counter series over the lastN live windows
// ending at the head.
func (r *Recorder) SumCounter(name string, lastN int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok || r.head < 0 {
		return 0
	}
	var sum float64
	for w := max(r.head-lastN+1, 0); w <= r.head; w++ {
		slot := w % r.cfg.Keep
		if c.tag[slot] == w {
			sum += c.vals[slot]
		}
	}
	return sum
}

// RecentQuantiles returns the named series' q-quantile per window for
// the lastN windows ending at the head, oldest first — the dashboard's
// trend sparkline. Empty windows yield 0.
func (r *Recorder) RecentQuantiles(name string, q float64, lastN int) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, 0, lastN)
	h, ok := r.hists[name]
	if r.head < 0 {
		return out
	}
	for w := max(r.head-lastN+1, 0); w <= r.head; w++ {
		v := 0.0
		if ok {
			slot := w % r.cfg.Keep
			if h.tag[slot] == w {
				v = h.hists[slot].Quantile(q)
			}
		}
		out = append(out, v)
	}
	return out
}

// WriteRowJSONL encodes one row as a JSONL line — the OnClose sink the
// CLI wires to the -obs export file.
func WriteRowJSONL(w io.Writer, row Row) error {
	return json.NewEncoder(w).Encode(row)
}
