package obs

import (
	"runtime"

	"aitax/internal/telemetry"
)

// CollectRuntime samples Go runtime health into reg as aitax_runtime_*
// gauges — heap footprint, GC pressure and goroutine count — so a
// /metrics scrape of the serving frontend shows the runtime tax next to
// the serving tax. Called per scrape; ReadMemStats is a stop-the-world
// sample, cheap at scrape cadence.
func CollectRuntime(reg *telemetry.Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Set("aitax_runtime_heap_alloc_bytes", float64(ms.HeapAlloc))
	reg.Set("aitax_runtime_heap_sys_bytes", float64(ms.HeapSys))
	reg.Set("aitax_runtime_heap_objects", float64(ms.HeapObjects))
	reg.Set("aitax_runtime_gc_total", float64(ms.NumGC))
	reg.Set("aitax_runtime_gc_pause_total_ms", float64(ms.PauseTotalNs)/1e6)
	reg.Set("aitax_runtime_next_gc_bytes", float64(ms.NextGC))
	reg.Set("aitax_runtime_goroutines", float64(runtime.NumGoroutine()))
}
