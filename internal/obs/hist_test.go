package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantileNearExact(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i) / 10) // uniform 0..999.9 ms
	}
	if h.Count() != 10000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		// The 1-1.5-2.5-4-6 ladder gives ~±1 bucket accuracy; at these
		// magnitudes one bucket is at most 400 ms wide.
		if math.Abs(got-tc.exact) > 110 {
			t.Errorf("q%.2f = %.1f, exact %.1f: off by more than a bucket", tc.q, got, tc.exact)
		}
		if got < h.Min() || got > h.Max() {
			t.Errorf("q%.2f = %.1f escapes [%g,%g]", tc.q, got, h.Min(), h.Max())
		}
	}
}

func TestHistogramMergeOrderInvariant(t *testing.T) {
	mk := func(vals ...float64) *Histogram {
		h := NewHistogram(nil)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := mk(1, 2, 3, 100, 200)
	b := mk(0.5, 50, 5000)
	c := mk(7)

	ab := NewHistogram(nil)
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)
	ba := NewHistogram(nil)
	ba.Merge(c)
	ba.Merge(b)
	ba.Merge(a)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if ab.Quantile(q) != ba.Quantile(q) {
			t.Fatalf("q%g differs by merge order: %g vs %g", q, ab.Quantile(q), ba.Quantile(q))
		}
	}
	if ab.Count() != 9 || ab.Sum() != ba.Sum() || ab.Min() != 0.5 || ab.Max() != 5000 {
		t.Fatalf("merged stats wrong: count %d sum %g min %g max %g", ab.Count(), ab.Sum(), ab.Min(), ab.Max())
	}
}

func TestHistogramResetKeepsStorage(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not empty the histogram")
	}
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(13)
		h.Reset()
	})
	if allocs != 0 {
		t.Fatalf("observe+reset allocates %v/op; ring reuse depends on 0", allocs)
	}
}

func TestHistogramMismatchedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merge with mismatched bounds did not panic")
		}
	}()
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2})
	b.Observe(1)
	a.Merge(b)
}

func TestSparkline(t *testing.T) {
	// Indices scale to the max: 0→▁, 1→▁ (1/8·7=0.875), 2→▂, 4→▄, 8→█.
	if got := Sparkline([]float64{0, 1, 2, 4, 8}); got != "▁▁▂▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := Sparkline([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
