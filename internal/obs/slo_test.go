package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("MobileNet 1.0 v1=250ms@99, all=1s@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives", len(objs))
	}
	if objs[0].Model != "MobileNet 1.0 v1" || objs[0].Latency != 250*time.Millisecond || objs[0].Target != 0.99 {
		t.Fatalf("objs[0] = %+v", objs[0])
	}
	if objs[1].Model != "" || objs[1].Latency != time.Second || objs[1].Target != 0.999 {
		t.Fatalf("objs[1] = %+v", objs[1])
	}
	if objs[1].Name() != "all models" {
		t.Fatalf("aggregate name %q", objs[1].Name())
	}
	for _, bad := range []string{
		"", "nomodel", "m=250ms", "m=@99", "m=250ms@", "m=0s@99", "m=1s@0", "m=1s@100", "m=1s@146",
		// NaN compares false against both range bounds; without the
		// explicit check it parses into a degenerate objective.
		"m=1s@NaN", "m=1s@nan", "m=1s@-5", "m=-1s@99",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		} else if !errors.Is(err, ErrBadObjective) {
			t.Errorf("spec %q: error %v does not wrap ErrBadObjective", bad, err)
		}
	}
}

func TestObjectiveMatch(t *testing.T) {
	o := Objective{Model: "A", Latency: 100 * time.Millisecond, Target: 0.99}
	if cov, _ := o.Match("B", 10*time.Millisecond, false); cov {
		t.Fatal("matched wrong model")
	}
	if _, br := o.Match("A", 10*time.Millisecond, false); br {
		t.Fatal("fast request breached")
	}
	if _, br := o.Match("A", 150*time.Millisecond, false); !br {
		t.Fatal("slow request did not breach")
	}
	if _, br := o.Match("A", 10*time.Millisecond, true); !br {
		t.Fatal("rejected request did not breach")
	}
	all := Objective{Latency: time.Second, Target: 0.9}
	if cov, _ := all.Match("anything", 0, false); !cov {
		t.Fatal("aggregate objective must cover every model")
	}
}

// feed pushes a run of windows with the given per-window good/bad
// counts through the monitor.
func feed(m *Monitor, obj Objective, startWin int, wins int, good, bad float64) {
	for w := startWin; w < startWin+wins; w++ {
		m.OnRow(Row{
			Index: w,
			Counters: map[string]float64{
				GoodSeries(obj): good,
				BadSeries(obj):  bad,
			},
		})
	}
}

func TestMonitorPagesOnSustainedBurnNotOnBlip(t *testing.T) {
	obj := Objective{Model: "A", Latency: 100 * time.Millisecond, Target: 0.99}
	m := NewMonitor([]Objective{obj}, 250*time.Millisecond)
	m.KeepHistory = true

	// Healthy traffic: no alerts.
	feed(m, obj, 0, 24, 100, 0)
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("healthy traffic alerted: %+v", got)
	}

	// One bad window (50% errors, burn 50x short-term) must not page:
	// the long horizon stays under threshold. It may warn.
	feed(m, obj, 24, 1, 50, 50)
	for _, a := range m.Alerts() {
		if a.Severity == "page" {
			t.Fatalf("single-window blip paged: %+v", a)
		}
	}

	// Sustained 50% errors: both horizons cross Page=10 and exactly one
	// page fires (severity transition, no re-fire while sustained).
	feed(m, obj, 25, 23, 50, 50)
	var pages []Alert
	for _, a := range m.Alerts() {
		if a.Severity == "page" {
			pages = append(pages, a)
		}
	}
	if len(pages) != 1 {
		t.Fatalf("want exactly 1 page, got %+v", pages)
	}
	if pages[0].Short < 10 || pages[0].Long < 10 {
		t.Fatalf("page fired below threshold: %+v", pages[0])
	}

	s := m.Summaries()[0]
	if s.Pass {
		t.Fatal("run with sustained 50% errors must fail the SLO")
	}
	if s.Good != 24*100+24*50 || s.Bad != 24*50 {
		t.Fatalf("good/bad accounting: %+v", s)
	}
	if len(m.Burns()) == 0 {
		t.Fatal("KeepHistory retained no burn samples")
	}
	cb := m.CurrentBurn()[obj.Name()]
	if cb[0] < 10 || cb[1] < 10 {
		t.Fatalf("CurrentBurn = %v, want both horizons >= 10", cb)
	}
}

func TestMonitorRecoversAndCanRePage(t *testing.T) {
	obj := Objective{Model: "A", Latency: time.Millisecond, Target: 0.9}
	m := NewMonitor([]Objective{obj}, 250*time.Millisecond)
	feed(m, obj, 0, 24, 0, 100) // total burn: 100% errors, budget 0.1 → 10x
	feed(m, obj, 24, 48, 100, 0)
	feed(m, obj, 72, 24, 0, 100)
	var pages int
	for _, a := range m.Alerts() {
		if a.Severity == "page" {
			pages++
		}
	}
	if pages != 2 {
		t.Fatalf("want a second page after recovery, got %d", pages)
	}
}

// TestMonitorReArmUnderConcurrentReads replays the recover-and-re-page
// sequence while reader goroutines hammer Summaries/CurrentBurn/Alerts.
// Under -race this proves the monitor's mutex covers the severity
// re-arm path, not just the happy path.
func TestMonitorReArmUnderConcurrentReads(t *testing.T) {
	obj := Objective{Model: "A", Latency: time.Millisecond, Target: 0.9}
	m := NewMonitor([]Objective{obj}, 250*time.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Summaries()
				m.CurrentBurn()
				m.Alerts()
			}
		}()
	}

	feed(m, obj, 0, 24, 0, 100)  // burn: page
	feed(m, obj, 24, 48, 100, 0) // recover: re-arm
	feed(m, obj, 72, 24, 0, 100) // burn again: second page
	close(stop)
	wg.Wait()

	var pages int
	for _, a := range m.Alerts() {
		if a.Severity == "page" {
			pages++
		}
	}
	if pages != 2 {
		t.Fatalf("want a second page after recovery under concurrent reads, got %d", pages)
	}
}

func TestMonitorGapWindowsCountAsIdle(t *testing.T) {
	obj := Objective{Model: "A", Latency: time.Millisecond, Target: 0.99}
	m := NewMonitor([]Objective{obj}, 250*time.Millisecond)
	// Rows 0 and 30 with a gap: the ring must not resurrect window 0's
	// counts into window 30's horizon (tags prevent it).
	m.OnRow(Row{Index: 0, Counters: map[string]float64{BadSeries(obj): 100}})
	m.OnRow(Row{Index: 30, Counters: map[string]float64{GoodSeries(obj): 100}})
	cb := m.CurrentBurn()[obj.Name()]
	if cb[0] != 0 || cb[1] != 0 {
		t.Fatalf("stale window leaked into burn: %v", cb)
	}
}

func TestWriteReportDeterministic(t *testing.T) {
	obj := Objective{Model: "MobileNet 1.0 v1", Latency: 250 * time.Millisecond, Target: 0.99}
	render := func() string {
		m := NewMonitor([]Objective{obj}, 250*time.Millisecond)
		feed(m, obj, 0, 10, 99, 1)
		var sb strings.Builder
		m.WriteReport(&sb)
		return sb.String()
	}
	first := render()
	if first != render() {
		t.Fatal("report not deterministic")
	}
	for _, want := range []string{"MobileNet 1.0 v1", "99% < 250ms", "PASS", "good 990 bad 10"} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
}
