// Package obs is the streaming observability layer: bounded-memory
// mergeable histograms, a windowed time-series recorder, SLO burn-rate
// monitoring, and a live text dashboard for the serving frontend.
//
// Everything in this package is deterministic given its inputs — no
// wall clocks, no sampling randomness — so the virtual-time simulator
// can drive it and golden-diff the result, while the HTTP frontend
// drives the identical code on wall-clock timestamps. Memory is flat by
// construction: histograms are fixed-bucket (no sample retention) and
// the recorder is a ring of windows, so a run of any length holds the
// same number of bytes.
package obs

import (
	"fmt"

	"aitax/internal/telemetry"
)

// DefaultBounds are the default histogram bucket upper bounds for
// latency-like series, in milliseconds: a 1-1.5-2.5-4-6 ladder per
// decade from 10 µs to 100 s. Finer than the telemetry registry's
// exposition buckets, because rolling percentiles are interpolated from
// these rather than computed from retained samples.
var DefaultBounds = func() []float64 {
	ladder := []float64{1, 1.5, 2.5, 4, 6}
	var out []float64
	for _, scale := range []float64{0.01, 0.1, 1, 10, 100, 1000, 10000} {
		for _, l := range ladder {
			out = append(out, l*scale)
		}
	}
	return append(out, 100000)
}()

// Histogram is a fixed-bucket, bounded-memory histogram: counts per
// bucket plus count/sum/min/max. Two histograms with the same bounds
// merge exactly (counts add), and quantiles are deterministic linear
// interpolations inside the bucket holding the requested rank — the
// "streaming mergeable statistics" building block the fleet roadmap
// item asks for.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram over the given bucket upper
// bounds (nil means DefaultBounds). Bounds must be strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: bounds not increasing at %d: %g <= %g", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[h.bucket(v)]++
}

// bucket returns the index of the bucket v lands in (binary search:
// first bound >= v).
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the observation sum.
func (h *Histogram) Sum() float64 { return h.sum }

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the observation mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the interpolated q-quantile (q in [0,1]), clamped to
// the observed [min, max] range; 0 when empty. Deterministic: a pure
// function of the bucket counts and extremes, so any merge order of the
// same windows reports the same percentiles.
func (h *Histogram) Quantile(q float64) float64 {
	return telemetry.QuantileFromBuckets(h.bounds, h.counts, h.count, h.min, h.max, q)
}

// Merge folds other into h. Both histograms must share bounds (the
// usual case: every series in a recorder uses the recorder's bounds);
// merging histograms whose bounds differ — in length or in any value —
// panics rather than silently producing a miscounted distribution.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("obs: merging histograms with different bounds")
	}
	// Same backing array (the common case: both built from one bounds
	// slice) needs no value scan.
	if len(h.bounds) > 0 && &h.bounds[0] != &other.bounds[0] {
		for i := range h.bounds {
			if h.bounds[i] != other.bounds[i] {
				panic("obs: merging histograms with different bounds")
			}
		}
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset empties the histogram in place, keeping its bucket storage —
// the recorder reuses window slots through this, so steady-state
// recording does not allocate.
func (h *Histogram) Reset() {
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Summary condenses the histogram for export rows.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// HistSummary is the JSON-exported shape of one window's histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}
