package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestRecorderClosesWindowsInOrder(t *testing.T) {
	var closed []Row
	r := NewRecorder(RecorderConfig{
		Window:  ms(100),
		Keep:    4,
		OnClose: func(row Row) { closed = append(closed, row) },
	})
	for i := 0; i < 10; i++ {
		r.Add(ms(i*100), "offered", 1)
		r.Observe(ms(i*100), "lat", float64(i))
	}
	r.Flush()
	if len(closed) != 10 {
		t.Fatalf("closed %d windows, want 10", len(closed))
	}
	for i, row := range closed {
		if row.Index != i {
			t.Fatalf("row %d has index %d; want in-order close", i, row.Index)
		}
		if row.Counters["offered"] != 1 {
			t.Fatalf("window %d offered = %v", i, row.Counters["offered"])
		}
		if h := row.Hists["lat"]; h.Count != 1 || h.Min != float64(i) {
			t.Fatalf("window %d hist = %+v", i, h)
		}
		if row.StartMS != float64(i*100) || row.EndMS != float64((i+1)*100) {
			t.Fatalf("window %d bounds [%g,%g]", i, row.StartMS, row.EndMS)
		}
	}
}

func TestRecorderSkipsIdleGapsAndDropsLate(t *testing.T) {
	var closed []int
	r := NewRecorder(RecorderConfig{
		Window:  ms(100),
		Keep:    2,
		OnClose: func(row Row) { closed = append(closed, row.Index) },
	})
	r.Add(ms(50), "c", 1)    // window 0
	r.Add(ms(950), "c", 1)   // window 9: 0 closes, 1..8 never existed
	r.Add(ms(10), "late", 1) // window 0 is long gone
	if got := r.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	r.Flush()
	if len(closed) != 2 || closed[0] != 0 || closed[1] != 9 {
		t.Fatalf("closed %v, want [0 9] (idle gap skipped)", closed)
	}
}

func TestRecorderRollingReads(t *testing.T) {
	r := NewRecorder(RecorderConfig{Window: ms(100), Keep: 16})
	for i := 0; i < 8; i++ {
		r.Add(ms(i*100), "served", 2)
		r.Observe(ms(i*100), "lat", float64((i+1)*10))
	}
	if got := r.SumCounter("served", 4); got != 8 {
		t.Fatalf("SumCounter last 4 = %g, want 8", got)
	}
	if got := r.SumCounter("served", 100); got != 16 {
		t.Fatalf("SumCounter all = %g, want 16", got)
	}
	merged := r.MergedHist("lat", 4)
	if merged.Count() != 4 || merged.Min() != 50 || merged.Max() != 80 {
		t.Fatalf("MergedHist last 4: count %d min %g max %g", merged.Count(), merged.Min(), merged.Max())
	}
	qs := r.RecentQuantiles("lat", 0.5, 4)
	if len(qs) != 4 {
		t.Fatalf("RecentQuantiles len %d", len(qs))
	}
	for i, q := range qs {
		want := float64((4 + i + 1) * 10) // windows 4..7, one value each
		if q != want {
			t.Fatalf("RecentQuantiles[%d] = %g, want %g", i, q, want)
		}
	}
	if h := r.MergedHist("absent", 4); h.Count() != 0 {
		t.Fatal("absent series should merge empty")
	}
}

func TestRecorderJSONLDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		r := NewRecorder(RecorderConfig{
			Window:  ms(100),
			Keep:    4,
			OnClose: func(row Row) { _ = WriteRowJSONL(&sb, row) },
		})
		r.Add(ms(10), "b_count", 2)
		r.Add(ms(10), "a_count", 1)
		r.Observe(ms(20), "lat", 5)
		r.Flush()
		return sb.String()
	}
	first := render()
	if first != render() {
		t.Fatal("JSONL export not deterministic")
	}
	want := `{"window":0,"start_ms":0,"end_ms":100,"counters":{"a_count":1,"b_count":2},"hists":{"lat":{"count":1,"sum":5,"min":5,"max":5,"p50":5,"p90":5,"p99":5}}}` + "\n"
	if first != want {
		t.Fatalf("JSONL row:\n got %q\nwant %q", first, want)
	}
}

// TestRecorderMemoryFlat is the bounded-bytes contract: a million
// observations across a long virtual run must not grow the recorder —
// the ring recycles windows, histograms are fixed-bucket.
func TestRecorderMemoryFlat(t *testing.T) {
	r := NewRecorder(RecorderConfig{Window: ms(100), Keep: 32})
	series := LatencySeries("MobileNet 1.0 v1")
	// Touch every ring slot first so steady state is reached.
	for i := 0; i < 64; i++ {
		r.Observe(ms(i*100), series, 1)
		r.Add(ms(i*100), ServedSeries("MobileNet 1.0 v1"), 1)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 1_000_000; i++ {
		at := ms(6400 + i/100*100)
		r.Observe(at, series, float64(i%1000))
		r.Add(at, ServedSeries("MobileNet 1.0 v1"), 1)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 1<<20 {
		t.Fatalf("heap grew %d bytes over 1M windowed observations; want flat (<1MB)", growth)
	}
}

func TestRecorderConcurrentHammer(t *testing.T) {
	// Every Add and Observe lands in a closed row or the dropped count,
	// exactly once — under -race this also proves the locking.
	var closedSum float64
	r := NewRecorder(RecorderConfig{
		Window: ms(100),
		Keep:   8,
		OnClose: func(row Row) {
			closedSum += row.Counters["served"] + float64(row.Hists["lat"].Count)
		},
	})
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				at := ms(i / 50 * 100)
				r.Add(at, "served", 1)
				r.Observe(at, "lat", float64(i%100))
			}
		}()
	}
	wg.Wait()
	r.Flush()
	total := closedSum + float64(r.Dropped())
	if total != 2*workers*perWorker { // one Add + one Observe per iteration
		t.Fatalf("closed+dropped = %g, want %d", total, 2*workers*perWorker)
	}
}

func BenchmarkRecorderSteadyState(b *testing.B) {
	r := NewRecorder(RecorderConfig{Window: ms(100), Keep: 32})
	series := LatencySeries(AllModels)
	served := ServedSeries(AllModels)
	for i := 0; i < 64; i++ { // reach steady state before measuring
		r.Observe(ms(i*100), series, 1)
		r.Add(ms(i*100), served, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := ms(6400 + i/100*100)
		r.Observe(at, series, float64(i%500))
		r.Add(at, served, 1)
	}
}
