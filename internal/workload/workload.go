// Package workload generates the background inference load of the
// paper's multi-tenancy experiments (Figs. 9 and 10): N copies of the
// TFLite benchmark utility scheduling the same model in a loop, either
// through the NNAPI Hexagon path (contending for the single DSP) or on
// the CPU (contending with the app's capture and pre-processing
// threads).
package workload

import (
	"fmt"

	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// Background is a set of continuously-inferencing background jobs.
type Background struct {
	rt      *tflite.Runtime
	ips     []*tflite.Interpreter
	stopped bool
	// Completed counts finished background inferences across all jobs.
	Completed int
}

// Start launches count background jobs of the model on the delegate.
// Each job initializes, then invokes in a closed loop until Stop.
func Start(rt *tflite.Runtime, model *models.Model, dt tensor.DType, delegate tflite.Delegate, count int) (*Background, error) {
	b := &Background{rt: rt}
	for i := 0; i < count; i++ {
		ip, err := rt.NewInterpreter(model, dt, tflite.Options{Delegate: delegate})
		if err != nil {
			return nil, fmt.Errorf("workload: job %d: %w", i, err)
		}
		b.ips = append(b.ips, ip)
		b.runLoop(ip)
	}
	return b, nil
}

func (b *Background) runLoop(ip *tflite.Interpreter) {
	ip.Init(func() {
		var loop func()
		loop = func() {
			if b.stopped {
				return
			}
			ip.Invoke(func(tflite.Report) {
				b.Completed++
				loop()
			})
		}
		loop()
	})
}

// Stop ends all background loops (in-flight invocations drain).
func (b *Background) Stop() { b.stopped = true }

// Jobs returns the number of background jobs.
func (b *Background) Jobs() int { return len(b.ips) }
