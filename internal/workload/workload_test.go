package workload

import (
	"testing"
	"time"

	"aitax/internal/app"
	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func TestBackgroundJobsRun(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 1)
	m, _ := models.ByName("MobileNet 1.0 v1")
	bg, err := Start(rt, m, tensor.UInt8, tflite.DelegateCPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt.Eng.After(200*time.Millisecond, bg.Stop)
	rt.Eng.Run()
	if bg.Completed == 0 {
		t.Fatal("no background inferences completed")
	}
	if bg.Jobs() != 2 {
		t.Fatalf("jobs = %d", bg.Jobs())
	}
}

func TestStartRejectsUnsupportedCombo(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 1)
	m, _ := models.ByName("AlexNet")
	if _, err := Start(rt, m, tensor.Float32, tflite.DelegateNNAPI, 1); err == nil {
		t.Fatal("unsupported combo accepted")
	}
}

// appBreakdown runs the classification app with n background jobs on the
// given delegate and returns mean per-stage times.
func appBreakdown(t *testing.T, n int, bgDelegate tflite.Delegate) (capPre, inf time.Duration) {
	t.Helper()
	rt := tflite.NewStack(soc.Pixel3(), 42)
	m, _ := models.ByName("MobileNet 1.0 v1")
	a, err := app.New(rt, app.Config{Model: m, DType: tensor.UInt8,
		Delegate: tflite.DelegateNNAPI, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	var bg *Background
	if n > 0 {
		bg, err = Start(rt, m, tensor.UInt8, bgDelegate, n)
		if err != nil {
			t.Fatal(err)
		}
	}
	frames := 12
	const skip = 2 // cold-start warmup frames
	a.Init(func() {
		a.Run(frames, func(sts []app.FrameStats) {
			for _, st := range sts[skip:] {
				capPre += st.Capture + st.Pre
				inf += st.Inference
			}
			capPre /= time.Duration(frames - skip)
			inf /= time.Duration(frames - skip)
			a.StopStream()
			if bg != nil {
				bg.Stop()
			}
		})
	})
	rt.Eng.Run()
	return capPre, inf
}

func TestFigure9DSPBackgroundStretchesInference(t *testing.T) {
	// Fig. 9: background NNAPI(DSP) inferences stall the app's inference
	// on the single DSP; capture+pre stays roughly constant.
	capPre0, inf0 := appBreakdown(t, 0, tflite.DelegateHexagon)
	capPre3, inf3 := appBreakdown(t, 3, tflite.DelegateHexagon)
	if inf3 < 2*inf0 {
		t.Fatalf("3 DSP tenants: inference %v -> %v, want big stretch", inf0, inf3)
	}
	ratio := float64(capPre3) / float64(capPre0)
	if ratio > 1.5 {
		t.Fatalf("capture+pre stretched %.2fx under DSP tenancy, want ~flat", ratio)
	}
}

func TestFigure10CPUBackgroundStretchesCapturePre(t *testing.T) {
	// Fig. 10: background CPU inferences contend with capture and
	// pre-processing; the app's DSP inference stays roughly constant.
	capPre0, inf0 := appBreakdown(t, 0, tflite.DelegateCPU)
	capPre3, inf3 := appBreakdown(t, 3, tflite.DelegateCPU)
	if float64(capPre3) < 1.3*float64(capPre0) {
		t.Fatalf("3 CPU tenants: capture+pre %v -> %v, want clear stretch", capPre0, capPre3)
	}
	if float64(inf3) > 1.6*float64(inf0) {
		t.Fatalf("inference stretched %v -> %v under CPU tenancy, want ~flat", inf0, inf3)
	}
}

func TestInferenceScalesLinearlyWithDSPTenants(t *testing.T) {
	// Fig. 9 reports a linear increase in latency per inference.
	var prev time.Duration
	for _, n := range []int{0, 1, 2} {
		_, inf := appBreakdown(t, n, tflite.DelegateHexagon)
		if inf <= prev {
			t.Fatalf("inference must grow with tenants: n=%d inf=%v prev=%v", n, inf, prev)
		}
		prev = inf
	}
}
