package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() {
		fired++
		e.After(5, func() { fired++ })
	})
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %v, want 15ns", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25ns", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events after Run, want 4", len(fired))
	}
}

func TestResourceSerializesBeyondCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dsp", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Acquire(100*time.Nanosecond, func(start, end Time) { ends = append(ends, end) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d, want 3", r.Served())
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 4)
	done := 0
	for i := 0; i < 4; i++ {
		r.Acquire(50*time.Nanosecond, func(start, end Time) {
			done++
			if end != 50 {
				t.Errorf("end = %v, want 50ns", end)
			}
		})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "u", 1)
	r.Acquire(100*time.Nanosecond, nil)
	e.Run()
	// Busy 100ns of a 100ns sim: utilization 1.0.
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
	if r.BusyTime() != 100*time.Nanosecond {
		t.Fatalf("busy = %v, want 100ns", r.BusyTime())
	}
}

func TestResourceQueueStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "q", 1)
	for i := 0; i < 5; i++ {
		r.Acquire(10*time.Nanosecond, nil)
	}
	if r.QueueLen() != 4 {
		t.Fatalf("queue = %d, want 4", r.QueueLen())
	}
	e.Run()
	if r.QueuePeak() != 4 {
		t.Fatalf("queue peak = %d, want 4", r.QueuePeak())
	}
	if r.QueueLen() != 0 {
		t.Fatalf("queue after run = %d, want 0", r.QueueLen())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds coincided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(5)
	d := 1000 * time.Nanosecond
	for i := 0; i < 10000; i++ {
		j := r.Jitter(d, 0.1)
		if j < 700 || j > 1300 {
			t.Fatalf("jitter %v outside ±3cv", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero cv must be identity")
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d count %d not ~10000", i, c)
		}
	}
}

func TestPropertyResourceConservation(t *testing.T) {
	// Property: for any batch of jobs on a capacity-1 resource, total busy
	// time equals the sum of holds and the finish time equals that sum.
	f := func(holds []uint16) bool {
		e := NewEngine()
		r := NewResource(e, "p", 1)
		var total Duration
		for _, h := range holds {
			d := Duration(h) * time.Nanosecond
			total += d
			r.Acquire(d, nil)
		}
		end := e.Run()
		return r.BusyTime() == total && end == Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEngineMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.After(Duration(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGLogNorm(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if r.LogNorm(0, 0.5) <= 0 {
			t.Fatal("lognormal values must be positive")
		}
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(19)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatal("exponential must be non-negative")
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 4.8 || mean > 5.2 {
		t.Fatalf("exp mean = %v, want ~5", mean)
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	var tick func()
	tick = func() { e.After(10, tick) }
	tick()
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation must hit the limit")
		}
	}()
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	e.After(-1, func() {})
}

func TestResourceMeanQueueLen(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "q", 1)
	for i := 0; i < 3; i++ {
		r.Acquire(10*time.Nanosecond, nil)
	}
	e.Run()
	if r.MeanQueueLen() <= 0 {
		t.Fatal("queued work must register a mean queue length")
	}
	if r.Name() != "q" || r.Capacity() != 1 {
		t.Fatal("accessors broken")
	}
}

func TestCancelledEventsSkippedInRunUntil(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(5, func() { t := 0; _ = t })
	e.Cancel(id)
	fired := false
	e.Schedule(10, func() { fired = true })
	e.RunUntil(20)
	if !fired {
		t.Fatal("live event after cancelled one did not fire")
	}
}

func TestTimeAccessors(t *testing.T) {
	tm := Time(1500)
	if tm.Nanoseconds() != 1500 {
		t.Fatal("Nanoseconds wrong")
	}
	if tm.Duration() != 1500*time.Nanosecond {
		t.Fatal("Duration wrong")
	}
	if tm.String() == "" {
		t.Fatal("String empty")
	}
}

func TestResourceInUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 2)
	r.Acquire(10, nil)
	if r.InUse() != 1 {
		t.Fatalf("in use = %d", r.InUse())
	}
	e.Run()
	if r.InUse() != 0 {
		t.Fatal("slot not released")
	}
}

func TestNewResourceRejectsZeroCapacity(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewResource(e, "bad", 0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestZeroSeedRemapped(t *testing.T) {
	a, b := NewRNG(0), NewRNG(0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("zero seed must be deterministic")
	}
}
