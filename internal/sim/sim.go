// Package sim provides a deterministic discrete-event simulation kernel.
//
// All hardware and OS behaviour in this repository (CPU scheduling, DSP
// offload, memory traffic, thermal state) is expressed as events on a
// virtual clock so that every experiment regenerates byte-identically.
// Time is measured in nanoseconds of virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// Nanoseconds returns t as a plain int64 nanosecond count.
func (t Time) Nanoseconds() int64 { return int64(t) }

// Duration returns the span from simulation start to t.
func (t Time) Duration() Duration { return Duration(t) }

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as a duration from simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback in virtual time.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among simultaneous events
	fn   func()
	dead bool
	// gen increments every time the event struct is recycled through the
	// engine's freelist, so an EventID issued for a previous occupancy
	// can never cancel the current one.
	gen uint32
}

// EventID identifies a scheduled event so it may be cancelled. The zero
// value is valid and cancels nothing; an ID whose event already fired
// (and was recycled) is detected by generation and ignored.
type EventID struct {
	ev  *event
	gen uint32
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// simulated concurrency is expressed through events, not goroutines.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	// free recycles fired/cancelled event structs: a simulation schedules
	// millions of events but only ever has a bounded number pending, so
	// the freelist caps event allocation at the peak queue depth.
	free []*event
	// Limit guards against runaway simulations; zero means no limit.
	Limit Time
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a modelling bug.
func (e *Engine) Schedule(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.dead = at, e.seq, fn, false
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the freelist, bumping its
// generation so outstanding EventIDs for it become inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	e.free = append(e.free, ev)
}

// After runs fn d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op (the generation check catches IDs
// whose event struct has since been recycled for a newer event).
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil && id.ev.gen == id.gen {
		id.ev.dead = true
	}
}

// Step fires the next pending event. It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		fn := ev.fn
		// Recycle before firing: fn may schedule new events and reuse
		// this struct, which is safe once the generation is bumped.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the Limit is reached.
// It returns the final virtual time.
func (e *Engine) Run() Time {
	for e.Step() {
		if e.Limit > 0 && e.now > e.Limit {
			panic(fmt.Sprintf("sim: exceeded time limit %v", e.Limit))
		}
	}
	return e.now
}

// RunUntil fires events up to and including time t, leaving later events
// pending. The clock is advanced to t even if no event lands exactly there.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			e.recycle(heap.Pop(&e.queue).(*event))
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Resource is a capacity-limited server with FIFO queueing: the building
// block for modelling a DSP, a memory port, or any other contended unit.
// Acquire requests enter service in request order; each holds one slot for
// its stated service duration.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// Accounting.
	busyTime    Duration // total slot-seconds of service completed
	lastChange  Time
	utilAccum   float64 // integral of (inUse/capacity) dt
	served      int
	queuedPeak  int
	totalQueued Duration // integral of queue length dt
}

type resWaiter struct {
	hold  Duration
	ready func(start, end Time)
}

// NewResource creates a resource with the given parallel capacity.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, name: name, capacity: capacity, lastChange: eng.Now()}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's parallel capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of occupied slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	now := r.eng.Now()
	dt := float64(now.Sub(r.lastChange))
	r.utilAccum += dt * float64(r.inUse) / float64(r.capacity)
	r.totalQueued += Duration(dt * float64(len(r.waiters)))
	r.lastChange = now
}

// Acquire requests hold time on the resource. ready is invoked when the
// request completes service, with the virtual times service started and
// ended. Requests are served FIFO.
func (r *Resource) Acquire(hold Duration, ready func(start, end Time)) {
	if hold < 0 {
		panic("sim: negative hold")
	}
	r.account()
	w := &resWaiter{hold: hold, ready: ready}
	r.waiters = append(r.waiters, w)
	if len(r.waiters) > r.queuedPeak {
		r.queuedPeak = len(r.waiters)
	}
	r.pump()
}

func (r *Resource) pump() {
	for r.inUse < r.capacity && len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse++
		start := r.eng.Now()
		end := start.Add(w.hold)
		r.eng.Schedule(end, func() {
			r.account()
			r.inUse--
			r.busyTime += w.hold
			r.served++
			if w.ready != nil {
				w.ready(start, end)
			}
			r.pump()
		})
	}
}

// Utilization returns the time-averaged fraction of capacity in use from
// simulation start to now.
func (r *Resource) Utilization() float64 {
	r.account()
	total := float64(r.eng.Now())
	if total == 0 {
		return 0
	}
	return r.utilAccum / total
}

// Served returns the number of completed requests.
func (r *Resource) Served() int { return r.served }

// BusyTime returns the cumulative service time delivered.
func (r *Resource) BusyTime() Duration { return r.busyTime }

// QueuePeak returns the maximum observed queue length.
func (r *Resource) QueuePeak() int { return r.queuedPeak }

// MeanQueueLen returns the time-averaged queue length.
func (r *Resource) MeanQueueLen() float64 {
	r.account()
	total := float64(r.eng.Now())
	if total == 0 {
		return 0
	}
	return float64(r.totalQueued) / total
}

// RNG is a small deterministic PRNG (xorshift64*) used for all simulated
// stochastic behaviour. math/rand would also do, but a local implementation
// pins the sequence across Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has the given mu and sigma.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Jitter returns d scaled by a factor drawn from N(1, cv) truncated at
// ±3cv and floored at 5% of d, modelling run-to-run variability with
// coefficient of variation cv.
func (r *RNG) Jitter(d Duration, cv float64) Duration {
	if cv <= 0 || d <= 0 {
		return d
	}
	f := r.Norm(1, cv)
	lo, hi := 1-3*cv, 1+3*cv
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	if f < 0.05 {
		f = 0.05
	}
	return Duration(float64(d) * f)
}
