package fleet

import (
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// anatomyFrames is the app-simulation length behind one base anatomy:
// warmup frames are discarded (plan compilation, cache fill), steady
// frames are kept and scaled per device.
const (
	anatomyWarmup = 2
	anatomySteady = 4
)

// rpcShareCap bounds the analytic FastRPC estimate to a plausible share
// of the inference stage: transport cannot exceed the whole offload.
const rpcShareCap = 0.40

// Anatomy is the base Table-III tax anatomy of one (catalog entry,
// model) pair: steady-state frame breakdowns from the instrumented app
// plus the per-frame FastRPC transport slice carved out of each frame's
// inference stage. The runner scales these by per-device jitter — the
// flat-memory trick that turns a 10k-device run into 10k cheap folds
// over a handful of cached anatomies.
type Anatomy struct {
	Frames [anatomySteady]app.FrameStats
	// RPC is the analytic per-frame FastRPC transport estimate for
	// Frames[i] (zero on pure-CPU paths). Always <= rpcShareCap of the
	// frame's inference stage.
	RPC [anatomySteady]time.Duration
	// Accel records whether inference ran on an accelerator (so device
	// folds scale it by accelerator binning instead of CPU thermals).
	Accel bool
}

// anatomyResult is the cached value: measurement errors are cached too,
// so every shard that needs a bad combination sees the same failure.
type anatomyResult struct {
	an  *Anatomy
	err error
}

// rpcPayloadBytes is the FastRPC input payload for a model: its input
// tensor (language models, which have no spatial input, use a nominal
// token-buffer payload).
func rpcPayloadBytes(m *models.Model, dt tensor.DType) int64 {
	if m.InputW == 0 || m.InputH == 0 {
		return 4096
	}
	return int64(m.InputW) * int64(m.InputH) * 3 * int64(dt.Size())
}

// dspBound reports whether the delegate crosses FastRPC for this dtype:
// the Hexagon delegate always does, NNAPI routes quantized graphs to
// the DSP (fp32 goes to the GPU driver, no FastRPC).
func dspBound(delegate tflite.Delegate, dt tensor.DType) bool {
	if delegate == tflite.DelegateHexagon {
		return true
	}
	return delegate == tflite.DelegateNNAPI && dt != tensor.Float32
}

// measureAnatomy runs the instrumented app once for the pair and
// extracts the steady frames. One full discrete-event simulation per
// (catalog entry, model) — not per device.
func measureAnatomy(sp soc.Spec, m *models.Model, dt tensor.DType,
	delegate tflite.Delegate, seed uint64) (*Anatomy, error) {

	platform, err := sp.Build()
	if err != nil {
		return nil, err
	}
	rt := tflite.NewStack(platform, seed)
	a, err := app.New(rt, app.Config{Model: m, DType: dt, Delegate: delegate, Streaming: true})
	if err != nil {
		return nil, fmt.Errorf("fleet: %s / %s: %w", sp.Name, m.Name, err)
	}
	an := &Anatomy{Accel: delegate != tflite.DelegateCPU}
	a.Init(func() {
		a.Run(anatomyWarmup+anatomySteady, func(sts []app.FrameStats) {
			copy(an.Frames[:], sts[anatomyWarmup:])
			a.StopStream()
		})
	})
	rt.Eng.Run()

	if dspBound(delegate, dt) {
		est := platform.RPC.CallOverhead(rpcPayloadBytes(m, dt))
		for i, f := range an.Frames {
			rpc := est
			if lim := time.Duration(rpcShareCap * float64(f.Inference)); rpc > lim {
				rpc = lim
			}
			an.RPC[i] = rpc
		}
	}
	return an, nil
}

// anatomyKey is the plan-cache key for one base anatomy. Seed and
// delegate live in Scope so fleet runs with different parameters in one
// process never share entries they should not.
func anatomyKey(sp *soc.Spec, m *models.Model, dt tensor.DType,
	delegate tflite.Delegate, seed uint64) plan.Key {
	return plan.Key{
		Kind:     "fleet-anatomy",
		Model:    m.Name,
		DType:    dt,
		Scope:    fmt.Sprintf("%s/%d/%d", delegate, anatomyWarmup+anatomySteady, seed),
		Platform: sp.Name,
	}
}

// anatomyFor resolves the cached base anatomy for a pair, measuring it
// exactly once per process (per cache) however many shards ask — the
// plan.Cache fan-in the sharded map exists for.
func anatomyFor(c *plan.Cache, sp soc.Spec, m *models.Model, dt tensor.DType,
	delegate tflite.Delegate, seed uint64) (*Anatomy, error) {

	v := c.Get(anatomyKey(&sp, m, dt, delegate, seed), func() any {
		an, err := measureAnatomy(sp, m, dt, delegate, seed)
		return anatomyResult{an: an, err: err}
	})
	res := v.(anatomyResult)
	return res.an, res.err
}
