package fleet

import (
	"runtime"
	"testing"

	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// heapAlloc forces a full collection and reads live heap bytes.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestFleetMemoryFlatAt10k is the flat-memory proof: once the anatomy
// cache is warm, a 10,000-device run retains O(shards × tiers) — the
// live heap may not grow by more than a fixed budget however many
// devices stream through. A per-device leak of even one small struct
// (48 B × 10k ≈ 480 KB) blows the budget.
func TestFleetMemoryFlatAt10k(t *testing.T) {
	cfg := Config{
		Devices:  10000,
		Shards:   32,
		Parallel: 1,
		Models:   testModels(t, "MobileNet 1.0 v1"),
		DType:    tensor.UInt8,
		Delegate: tflite.DelegateNNAPI,
		Seed:     21,
		Plans:    plan.New(),
	}
	// Warm run: anatomy measurement simulations fill cfg.Plans.
	if _, err := Run(nil, cfg); err != nil {
		t.Fatal(err)
	}

	before := heapAlloc()
	res, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := heapAlloc()

	if res.Merged.All().Devices != 10000 {
		t.Fatalf("folded %d devices", res.Merged.All().Devices)
	}
	// Budget: the retained result itself is O(shards × tiers) histograms
	// (~33 shards × 3 tiers × 8 histograms × ~300 B of buckets ≈ 300 KB)
	// plus GC noise. 2 MB is an order of magnitude of slack over that
	// and far below any O(devices) retention.
	const budget = 2 << 20
	growth := int64(after) - int64(before)
	if growth > budget {
		t.Fatalf("heap grew %d bytes across a warm 10k-device run (budget %d): per-device state is being retained", growth, budget)
	}
	runtime.KeepAlive(res)
}

// BenchmarkFleetSample: fabricating one device — the sampler must stay
// a stack-only value computation (0 allocs/op).
func BenchmarkFleetSample(b *testing.B) {
	s, err := NewSampler(soc.DefaultCatalog(), 42, 3)
	if err != nil {
		b.Fatal(err)
	}
	var sink Device
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.Device(i)
	}
	_ = sink
}

// BenchmarkFleetShard: the steady per-device loop — sample, resolve the
// warm anatomy, fold into the tier aggregate. This is the path a
// 10k-device run spends its time in once anatomies are cached; the
// alloc gate pins it at 0 allocs/op.
func BenchmarkFleetShard(b *testing.B) {
	mix := testModels(b, "MobileNet 1.0 v1", "SSD MobileNet v2", "EfficientNet-Lite0")
	cache := plan.New()
	sampler, err := NewSampler(soc.DefaultCatalog(), 42, len(mix))
	if err != nil {
		b.Fatal(err)
	}
	// Warm every (entry, model) anatomy outside the timed loop.
	anats := make([]*Anatomy, len(sampler.Catalog())*len(mix))
	for e := range sampler.Catalog() {
		for mi, m := range mix {
			an, err := anatomyFor(cache, sampler.Catalog()[e].Spec, m,
				tensor.UInt8, tflite.DelegateNNAPI, 42)
			if err != nil {
				b.Fatal(err)
			}
			anats[e*len(mix)+mi] = an
		}
	}
	agg := NewShardAgg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := sampler.Device(i)
		agg.Tiers[d.Tier].Fold(d, anats[d.Entry*len(mix)+d.Model])
	}
}
