package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"aitax/internal/obs"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/trace"
)

// Everything this file prints derives only from exactly-mergeable state:
// integer counts, exact extremes, bucket-interpolated quantiles, and
// fixed-point regression sums. Float sums and means are deliberately
// absent — float addition is not associative, so a sum could differ in
// its last bit between shard groupings and break the byte-identical
// report contract. Run-shape facts that legitimately vary (-parallel,
// cache hit counts) belong on stderr, never in this output.

// WriteReport renders the population report. Byte-identical for a given
// (catalog, devices, models, dtype, delegate, seed) at any -parallel
// and any -shards.
func WriteReport(w io.Writer, r *Result) error {
	bw := &errWriter{w: w}
	names := make([]string, len(r.Models))
	for i, m := range r.Models {
		names[i] = m.Name
	}
	bw.printf("aitax fleet: %d devices, model mix [%s]\n", r.Devices, strings.Join(names, ", "))
	bw.printf("population AI-tax anatomy by tier (per-frame shares, percent)\n")

	for _, tier := range soc.Tiers() {
		writeTier(bw, tier.String(), r.Merged.Tiers[tier])
	}
	writeTier(bw, "all", r.Merged.All())
	return bw.err
}

// writeTier renders one tier block.
func writeTier(bw *errWriter, name string, a *TierAgg) {
	bw.printf("\n== tier %s ==\n", name)
	if a.Devices == 0 {
		bw.printf("devices 0\n")
		return
	}
	bw.printf("devices %d  frames %d\n", a.Devices, a.Frames)
	bw.printf("frame total ms   %s\n", histLine(a.Total))
	bw.printf("tax share %%      %s\n", histLine(a.Tax))
	bw.printf("stage share %%        p50      p90      p99\n")
	for s := Stage(0); s < NumStages; s++ {
		h := a.Stage[s]
		bw.printf("  %-10s %9.3f%9.3f%9.3f\n",
			s, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	fit := a.Reg.Fit()
	bw.printf("tax vs perf: slope %.4f %%/x  intercept %.4f %%  r2 %.4f  n %d\n",
		fit.Slope, fit.Intercept, fit.R2, a.Reg.N())
}

// histLine formats a histogram's exact-mergeable summary fields.
func histLine(h *obs.Histogram) string {
	return fmt.Sprintf("count %d  min %.3f  max %.3f  p50 %.3f  p90 %.3f  p99 %.3f",
		h.Count(), h.Min(), h.Max(),
		h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
}

// errWriter keeps the printf cascade readable: first error wins.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// tierRow is a population JSONL summary row.
type tierRow struct {
	Kind    string  `json:"kind"`
	Tier    string  `json:"tier"`
	Devices int64   `json:"devices"`
	Frames  int64   `json:"frames"`
	TaxP50  float64 `json:"tax_p50_pct"`
	TaxP90  float64 `json:"tax_p90_pct"`
	TaxP99  float64 `json:"tax_p99_pct"`
	Slope   float64 `json:"tax_perf_slope"`
	Icept   float64 `json:"tax_perf_intercept"`
	R2      float64 `json:"tax_perf_r2"`
}

// stageRow is a per-(tier, stage) JSONL distribution row. No sums: only
// exactly-mergeable fields are exported (see the file comment).
type stageRow struct {
	Kind  string  `json:"kind"`
	Tier  string  `json:"tier"`
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	Min   float64 `json:"min_pct"`
	Max   float64 `json:"max_pct"`
	P50   float64 `json:"p50_pct"`
	P90   float64 `json:"p90_pct"`
	P99   float64 `json:"p99_pct"`
}

// WriteJSONL streams the population distributions as one JSON object
// per line — same byte-identity contract as the report.
func WriteJSONL(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	emit := func(name string, a *TierAgg) error {
		if a.Devices == 0 {
			return nil
		}
		fit := a.Reg.Fit()
		if err := enc.Encode(tierRow{
			Kind: "tier", Tier: name, Devices: a.Devices, Frames: a.Frames,
			TaxP50: a.Tax.Quantile(0.50), TaxP90: a.Tax.Quantile(0.90), TaxP99: a.Tax.Quantile(0.99),
			Slope: fit.Slope, Icept: fit.Intercept, R2: fit.R2,
		}); err != nil {
			return err
		}
		for s := Stage(0); s < NumStages; s++ {
			h := a.Stage[s]
			if err := enc.Encode(stageRow{
				Kind: "stage", Tier: name, Stage: s.String(),
				Count: h.Count(), Min: h.Min(), Max: h.Max(),
				P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tier := range soc.Tiers() {
		if err := emit(tier.String(), r.Merged.Tiers[tier]); err != nil {
			return err
		}
	}
	return emit("all", r.Merged.All())
}

// WriteCounters exports the run's convergence trail as Chrome trace
// counters: after each shard merges (submission order), the cumulative
// population tax quantiles are sampled. Loading the file shows the
// estimate settling as the fleet accumulates — flat lines mean the
// sample is already representative.
func WriteCounters(w io.Writer, r *Result) error {
	rec := trace.NewChromeRecorder()
	rec.SetProcessName(0, "aitax-fleet")
	cum := NewShardAgg()
	for s, agg := range r.PerShard {
		cum.Merge(agg)
		at := sim.Time(s+1) * sim.Time(1e6) // one virtual ms per shard
		all := cum.All()
		if all.Frames == 0 {
			continue
		}
		rec.AddCounter("fleet tax p50 %", at, all.Tax.Quantile(0.50))
		rec.AddCounter("fleet tax p99 %", at, all.Tax.Quantile(0.99))
		for _, tier := range soc.Tiers() {
			t := cum.Tiers[tier]
			if t.Frames == 0 {
				continue
			}
			rec.AddCounter("tax p50 % "+tier.String(), at, t.Tax.Quantile(0.50))
		}
	}
	return rec.WriteJSON(w)
}
