package fleet

import (
	"bytes"
	"strings"
	"testing"

	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func testModels(t testing.TB, names ...string) []*models.Model {
	out := make([]*models.Model, len(names))
	for i, n := range names {
		m, err := models.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// TestSamplerDeterministic: Device(i) is a pure function of (catalog,
// seed, i) — two samplers agree, and the value is independent of any
// other index being sampled first (no hidden stream state).
func TestSamplerDeterministic(t *testing.T) {
	cat := soc.DefaultCatalog()
	a, err := NewSampler(cat, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSampler(cat, 7, 3)
	b.Device(9999) // perturb nothing: draws must not leak across indices
	for _, i := range []int{0, 1, 17, 4096, 9999} {
		if a.Device(i) != b.Device(i) {
			t.Fatalf("device %d diverged: %+v vs %+v", i, a.Device(i), b.Device(i))
		}
	}
	if a.Device(3) == a.Device(4) {
		t.Fatal("adjacent devices identical — jitter streams collapsed")
	}
	c, _ := NewSampler(cat, 8, 3)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Device(i) == c.Device(i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 devices identical across seeds", same)
	}
}

// TestSamplerEnvelopes: every jitter lands in its documented envelope
// and the weighted entry pick roughly follows the catalog weights.
func TestSamplerEnvelopes(t *testing.T) {
	cat := soc.DefaultCatalog()
	s, err := NewSampler(cat, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := make([]int, len(cat))
	for i := 0; i < n; i++ {
		d := s.Device(i)
		counts[d.Entry]++
		sp := &cat[d.Entry].Spec
		if d.CPUBin < cpuBinLo || d.CPUBin >= cpuBinHi {
			t.Fatalf("device %d CPUBin %g out of envelope", i, d.CPUBin)
		}
		if d.AccelBin < accelBinLo || d.AccelBin >= accelBinHi {
			t.Fatalf("device %d AccelBin %g out of envelope", i, d.AccelBin)
		}
		if d.RPCMult < rpcJitterLo || d.RPCMult >= rpcJitterHi {
			t.Fatalf("device %d RPCMult %g out of envelope", i, d.RPCMult)
		}
		if d.TempC < sp.IdleTempC || d.TempC > sp.IdleTempC+tempFracMax*(sp.MaxTempC-sp.IdleTempC) {
			t.Fatalf("device %d TempC %g outside sampled thermal range", i, d.TempC)
		}
		if d.CPUDerate < 1 || d.CPUDerate > 1+thermalDerateMax {
			t.Fatalf("device %d CPUDerate %g", i, d.CPUDerate)
		}
		if d.Tier != sp.Tier() {
			t.Fatalf("device %d tier %v != spec tier %v", i, d.Tier, sp.Tier())
		}
		if d.Model < 0 || d.Model >= 2 {
			t.Fatalf("device %d model index %d", i, d.Model)
		}
	}
	total := cat.TotalWeight()
	for e, c := range counts {
		want := float64(n) * cat[e].Weight / total
		if got := float64(c); got < want*0.85 || got > want*1.15 {
			t.Fatalf("entry %d (%s): %d sampled, want ~%.0f",
				e, cat[e].Spec.Name, c, want)
		}
	}
}

// TestSamplerRejects pins the constructor's validation.
func TestSamplerRejects(t *testing.T) {
	if _, err := NewSampler(soc.Catalog{}, 1, 1); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := NewSampler(soc.DefaultCatalog(), 1, 0); err == nil {
		t.Fatal("zero models accepted")
	}
}

// runReport executes a run and renders its report.
func runReport(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRunByteIdentical: the tentpole contract — the report (and JSONL)
// is byte-identical at any parallelism and any shard count.
func TestRunByteIdentical(t *testing.T) {
	base := Config{
		Devices:  600,
		Models:   testModels(t, "MobileNet 1.0 v1"),
		DType:    tensor.UInt8,
		Delegate: tflite.DelegateNNAPI,
		Seed:     11,
		Plans:    plan.New(), // one warm cache across the variants
	}
	want := ""
	for _, v := range []struct{ parallel, shards int }{
		{1, 1}, {1, 7}, {2, 13}, {8, 64}, {4, 600},
	} {
		cfg := base
		cfg.Parallel, cfg.Shards = v.parallel, v.shards
		got := runReport(t, cfg)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("report diverged at parallel=%d shards=%d", v.parallel, v.shards)
		}
	}
	if !strings.Contains(want, "== tier entry ==") {
		t.Fatalf("report missing tier sections:\n%s", want)
	}
}

// TestRunJSONLByteIdentical covers the JSONL export the same way.
func TestRunJSONLByteIdentical(t *testing.T) {
	base := Config{
		Devices:  400,
		Models:   testModels(t, "MobileNet 1.0 v1", "SSD MobileNet v2"),
		DType:    tensor.UInt8,
		Delegate: tflite.DelegateNNAPI,
		Seed:     5,
		Plans:    plan.New(),
	}
	render := func(shards, parallel int) string {
		cfg := base
		cfg.Shards, cfg.Parallel = shards, parallel
		res, err := Run(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(1, 1), render(19, 8)
	if a != b {
		t.Fatal("JSONL diverged across shard/parallel variants")
	}
	if !strings.Contains(a, `"stage":"rpc"`) {
		t.Fatalf("JSONL missing stage rows:\n%s", a)
	}
}

// TestRunPropagatesAnatomyErrors: an unsupported (model, dtype,
// delegate) combination fails the run with a useful error instead of
// folding garbage.
func TestRunPropagatesAnatomyErrors(t *testing.T) {
	_, err := Run(nil, Config{
		Devices: 50,
		// SqueezeNet has no int8 support anywhere (Table I).
		Models:   testModels(t, "SqueezeNet"),
		DType:    tensor.UInt8,
		Delegate: tflite.DelegateCPU,
		Seed:     3,
		Plans:    plan.New(),
	})
	if err == nil {
		t.Fatal("unsupported combination did not fail")
	}
	if !strings.Contains(err.Error(), "SqueezeNet") {
		t.Fatalf("error does not name the model: %v", err)
	}
}

// TestRunValidates pins the config guard rails.
func TestRunValidates(t *testing.T) {
	if _, err := Run(nil, Config{Devices: 0, Models: testModels(t, "MobileNet 1.0 v1")}); err == nil {
		t.Fatal("zero devices accepted")
	}
	if _, err := Run(nil, Config{Devices: 10}); err == nil {
		t.Fatal("empty model list accepted")
	}
}

// TestShardAggMergeMatchesSingleShard: merging per-shard aggregates in
// submission order equals the single-shard aggregate, field for field —
// the exact-mergeability property the report's byte-identity rests on.
func TestShardAggMergeMatchesSingleShard(t *testing.T) {
	cfg := Config{
		Devices:  300,
		Models:   testModels(t, "MobileNet 1.0 v1"),
		DType:    tensor.Float32,
		Delegate: tflite.DelegateGPU,
		Seed:     9,
		Plans:    plan.New(),
	}
	cfg.Shards = 1
	one, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 23
	many, err := Run(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(many.PerShard) != 23 {
		t.Fatalf("got %d shards", len(many.PerShard))
	}
	for tier := range one.Merged.Tiers {
		a, b := one.Merged.Tiers[tier], many.Merged.Tiers[tier]
		if a.Devices != b.Devices || a.Frames != b.Frames {
			t.Fatalf("tier %d counts diverged: %d/%d vs %d/%d",
				tier, a.Devices, a.Frames, b.Devices, b.Frames)
		}
		if a.Total.Count() != b.Total.Count() ||
			a.Total.Min() != b.Total.Min() || a.Total.Max() != b.Total.Max() ||
			a.Total.Quantile(0.99) != b.Total.Quantile(0.99) {
			t.Fatalf("tier %d latency histograms diverged", tier)
		}
		if *a.Reg != *b.Reg {
			t.Fatalf("tier %d regression accumulators diverged", tier)
		}
	}
}
