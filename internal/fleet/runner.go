package fleet

import (
	"context"
	"fmt"
	"time"

	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/stats"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// Stage indexes the fleet report's Table-III-shaped frame anatomy. RPC
// is broken out of the inference stage: it is transport tax, and the
// paper's cross-SoC comparison (older parts pay proportionally more per
// FastRPC crossing) is exactly what the per-tier split shows.
type Stage int

// Report stages, in frame order.
const (
	StageCapture Stage = iota
	StagePre
	StageRPC
	StageInfer
	StagePost
	StageUI
	NumStages
)

// String names the stage the way the report prints it.
func (s Stage) String() string {
	switch s {
	case StageCapture:
		return "capture"
	case StagePre:
		return "pre"
	case StageRPC:
		return "rpc"
	case StageInfer:
		return "infer"
	case StagePost:
		return "post"
	case StageUI:
		return "ui"
	}
	return fmt.Sprintf("stage-%d", int(s))
}

// ShareBounds are the histogram bucket bounds for percent-share series
// (stage share of frame, tax share of frame). One shared slice: every
// share histogram in the process merges on the same backing array.
var ShareBounds = []float64{
	0.25, 0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12.5, 15, 17.5, 20, 25,
	30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90, 95, 100,
}

// Regression quantization grids (see stats.NewRegAccum): performance
// multipliers stay below ~4, shares below 100.
const (
	regXScale = 1e4
	regYScale = 1e2
)

// TierAgg accumulates one tier's population statistics. Every field is
// exactly mergeable — integer bucket counts, exact extremes, fixed-point
// regression sums — so any shard grouping merges to the same state.
type TierAgg struct {
	Devices int64
	Frames  int64
	// Total is the per-frame end-to-end latency distribution (ms).
	Total *obs.Histogram
	// Tax is the per-frame AI-tax share distribution (percent).
	Tax *obs.Histogram
	// Stage holds per-stage share-of-frame distributions (percent).
	Stage [NumStages]*obs.Histogram
	// Reg regresses per-device mean tax share (percent) on the device
	// performance index: the "how much worse is the tax on slow parts"
	// trend line, per tier.
	Reg *stats.RegAccum
}

// NewTierAgg returns an empty aggregate.
func NewTierAgg() *TierAgg {
	a := &TierAgg{
		Total: obs.NewHistogram(obs.DefaultBounds),
		Tax:   obs.NewHistogram(ShareBounds),
		Reg:   stats.NewRegAccum(regXScale, regYScale),
	}
	for i := range a.Stage {
		a.Stage[i] = obs.NewHistogram(ShareBounds)
	}
	return a
}

// Merge folds other into a (exact; order-independent end state).
func (a *TierAgg) Merge(other *TierAgg) {
	if other == nil {
		return
	}
	a.Devices += other.Devices
	a.Frames += other.Frames
	a.Total.Merge(other.Total)
	a.Tax.Merge(other.Tax)
	for i := range a.Stage {
		a.Stage[i].Merge(other.Stage[i])
	}
	a.Reg.Merge(other.Reg)
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Fold scales the base anatomy by the device's jitter and accumulates
// the resulting frames. This is the steady per-device loop: it must not
// allocate (BenchmarkFleetShard pins 0 allocs/op), which is why stage
// math runs on stack floats against the preallocated histograms.
func (a *TierAgg) Fold(d Device, an *Anatomy) {
	a.Devices++
	cpuScale := d.CPUDerate / d.CPUBin
	taxSum := 0.0
	for i := range an.Frames {
		f := &an.Frames[i]
		capture := msf(f.Capture) * cpuScale
		pre := msf(f.Pre) * cpuScale
		post := msf(f.Post) * cpuScale
		ui := msf(f.UI) * cpuScale
		rpcBase := msf(an.RPC[i])
		rpc := rpcBase * d.RPCMult
		infer := msf(f.Inference) - rpcBase
		if an.Accel {
			infer /= d.AccelBin
		} else {
			infer *= cpuScale
		}
		total := capture + pre + rpc + infer + post + ui
		taxPct := (total - infer) / total * 100

		a.Frames++
		a.Total.Observe(total)
		a.Tax.Observe(taxPct)
		a.Stage[StageCapture].Observe(capture / total * 100)
		a.Stage[StagePre].Observe(pre / total * 100)
		a.Stage[StageRPC].Observe(rpc / total * 100)
		a.Stage[StageInfer].Observe(infer / total * 100)
		a.Stage[StagePost].Observe(post / total * 100)
		a.Stage[StageUI].Observe(ui / total * 100)
		taxSum += taxPct
	}
	a.Reg.Add(d.Perf, taxSum/float64(len(an.Frames)))
}

// Config selects a fleet run.
type Config struct {
	// Catalog is the SoC population (soc.DefaultCatalog when nil).
	Catalog soc.Catalog
	// Devices is the fleet size.
	Devices int
	// Shards cuts the device index space into contiguous jobs
	// (default 32). The report is byte-identical at any value.
	Shards int
	// Models is the application mix; each device runs one, assigned by
	// seeded hash.
	Models []*models.Model
	// DType and Delegate select the inference configuration.
	DType    tensor.DType
	Delegate tflite.Delegate
	// Seed drives every sampled quantity.
	Seed uint64
	// Parallel bounds the lab worker pool (<=0: GOMAXPROCS). The report
	// is byte-identical at any value.
	Parallel int
	// Plans is the anatomy cache (plan.Shared when nil).
	Plans *plan.Cache
	// OnProgress, when set, receives each shard's lab result as it
	// completes (completion order; stderr reporting only).
	OnProgress func(lab.JobResult)
}

// ShardAgg is one shard's (or the merged run's) per-tier aggregates —
// the unit of fleet memory: a run holds O(shards × tiers) of these and
// nothing per device.
type ShardAgg struct {
	Tiers [soc.NumTiers]*TierAgg
}

// NewShardAgg returns an empty per-tier aggregate set.
func NewShardAgg() *ShardAgg {
	s := &ShardAgg{}
	for i := range s.Tiers {
		s.Tiers[i] = NewTierAgg()
	}
	return s
}

// Merge folds other into s tier by tier.
func (s *ShardAgg) Merge(other *ShardAgg) {
	for i := range s.Tiers {
		s.Tiers[i].Merge(other.Tiers[i])
	}
}

// All merges every tier into one population-wide aggregate.
func (s *ShardAgg) All() *TierAgg {
	all := NewTierAgg()
	for _, t := range s.Tiers {
		all.Merge(t)
	}
	return all
}

// Result is a completed fleet run.
type Result struct {
	// Devices and Shards echo the resolved run shape.
	Devices, Shards int
	// Models echoes the application mix.
	Models []*models.Model
	// PerShard holds each shard's aggregates in submission order — the
	// convergence trail the Chrome counter export walks.
	PerShard []*ShardAgg
	// Merged is the submission-order merge of PerShard.
	Merged *ShardAgg
}

// shardBounds cuts [0, devices) into contiguous ranges.
func shardBounds(devices, shards, s int) (lo, hi int) {
	return s * devices / shards, (s + 1) * devices / shards
}

// Run executes the fleet simulation: shards fan out on the lab pool,
// each folds its contiguous device range against cached base anatomies,
// and the per-shard aggregates merge in submission order.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Catalog == nil {
		cfg.Catalog = soc.DefaultCatalog()
	}
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	if cfg.Shards > cfg.Devices {
		cfg.Shards = cfg.Devices
	}
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("fleet: need at least one model")
	}
	plans := cfg.Plans
	if plans == nil {
		plans = plan.Shared
	}
	sampler, err := NewSampler(cfg.Catalog, cfg.Seed, len(cfg.Models))
	if err != nil {
		return nil, err
	}

	jobs := make([]lab.Job, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := shardBounds(cfg.Devices, cfg.Shards, s)
		jobs[s] = lab.Job{
			ID: fmt.Sprintf("shard-%d[%d:%d]", s, lo, hi),
			Run: func(ctx context.Context) (any, error) {
				return runShard(sampler, cfg, plans, lo, hi)
			},
		}
	}
	l := lab.Lab{Parallelism: cfg.Parallel, OnProgress: cfg.OnProgress}
	results := l.Run(ctx, jobs)

	res := &Result{
		Devices:  cfg.Devices,
		Shards:   cfg.Shards,
		Models:   cfg.Models,
		PerShard: make([]*ShardAgg, 0, cfg.Shards),
		Merged:   NewShardAgg(),
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", r.ID, r.Err)
		}
		agg := r.Value.(*ShardAgg)
		res.PerShard = append(res.PerShard, agg)
		res.Merged.Merge(agg)
	}
	return res, nil
}

// runShard folds one contiguous device range. The anatomy array is the
// shard's warm path: after the first device of each (entry, model) pair
// resolves its anatomy through the plan cache, every later device costs
// a few hundred nanoseconds of histogram math and zero allocations.
func runShard(sampler *Sampler, cfg Config, plans *plan.Cache, lo, hi int) (*ShardAgg, error) {
	agg := NewShardAgg()
	anats := make([]*Anatomy, len(sampler.Catalog())*len(cfg.Models))
	for i := lo; i < hi; i++ {
		d := sampler.Device(i)
		slot := d.Entry*len(cfg.Models) + d.Model
		an := anats[slot]
		if an == nil {
			var err error
			an, err = anatomyFor(plans, sampler.Catalog()[d.Entry].Spec,
				cfg.Models[d.Model], cfg.DType, cfg.Delegate, cfg.Seed)
			if err != nil {
				return nil, err
			}
			anats[slot] = an
		}
		agg.Tiers[d.Tier].Fold(d, an)
	}
	return agg, nil
}
