// Package fleet scales the single-device AI-tax simulation out to a
// population: a data-driven SoC catalog (internal/soc.Catalog) is
// expanded by a seeded sampler into tens of thousands of deterministic
// device configurations — catalog entry × population weight × per-device
// silicon/thermal/transport jitter — and a sharded runner folds every
// device's Table-III tax anatomy into per-tier mergeable statistics.
//
// The memory contract is the point: a run over N devices allocates
// O(shards × tiers), not O(N). Per-device state is a value (Device),
// per-device measurement reuses one cached base anatomy per
// (catalog entry, model) via plan.Cache, and every aggregate is an
// exactly-mergeable structure (obs.Histogram counts, stats.RegAccum
// integer sums), so the shard merge — performed in submission order on
// the lab's deterministic fan-in — yields byte-identical reports at any
// -parallel and any shard count.
package fleet

import (
	"fmt"
	"math"

	"aitax/internal/soc"
)

// gamma is the splitmix64 increment (golden-ratio conjugate in 64 bits).
const gamma = 0x9e3779b97f4a7c15

// mix is the splitmix64 output mixer: a bijective avalanche over 64
// bits. Device jitter derives from mix chains seeded by (fleet seed,
// device index) alone, so a device's configuration is independent of
// how the index space is cut into shards.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// devRand is a value-type per-device random stream. It lives on the
// caller's stack: sampling a device performs zero heap allocations,
// which is what keeps the runner's steady per-device loop alloc-free.
type devRand struct{ s uint64 }

func newDevRand(seed uint64, index int) devRand {
	return devRand{s: mix(seed+gamma) ^ mix(uint64(index)*gamma+1)}
}

func (r *devRand) next() uint64 {
	r.s += gamma
	return mix(r.s)
}

// u01 draws a uniform float in [0, 1).
func (r *devRand) u01() float64 { return float64(r.next()>>11) / (1 << 53) }

// in draws a uniform float in [lo, hi).
func (r *devRand) in(lo, hi float64) float64 { return lo + (hi-lo)*r.u01() }

// Per-device jitter envelopes. Binning spread on CPU and accelerator
// silicon is a few percent; FastRPC transport varies more (driver and
// DDR clock vote differences between device states), and only upward —
// the catalog RPC figures are best-case.
const (
	cpuBinLo, cpuBinHi       = 0.94, 1.06
	accelBinLo, accelBinHi   = 0.92, 1.08
	rpcJitterLo, rpcJitterHi = 0.95, 1.20
	// tempFracMax bounds how far up the thermal envelope a sampled
	// device idles (0.6 → a device never starts beyond 60% of the way
	// from idle to throttle).
	tempFracMax = 0.6
	// thermalDerateMax is the CPU slowdown at the top of the sampled
	// thermal range (sustained-clock loss, not emergency throttling).
	thermalDerateMax = 0.25
)

// Device is one sampled fleet member: a catalog entry plus its jitter.
// It is a plain value — the sampler fabricates it on demand and the
// runner folds it away without retaining it.
type Device struct {
	// Index is the device's position in the fleet [0, Devices).
	Index int
	// Entry is the catalog index of the device's SoC.
	Entry int
	// Tier is the catalog entry's market tier (derived, cached here so
	// the fold does not recompute it per device).
	Tier soc.Tier
	// CPUBin and AccelBin are silicon-binning speed multipliers
	// (>1 = faster than the catalog part).
	CPUBin, AccelBin float64
	// RPCMult scales FastRPC transport cost (>=~1; transport only
	// degrades relative to the catalog figure).
	RPCMult float64
	// TempC is the device's sampled operating temperature.
	TempC float64
	// CPUDerate is the thermal slowdown multiplier applied to CPU-stage
	// time (1 at idle temperature, up to 1+thermalDerateMax).
	CPUDerate float64
	// Perf is the device's scalar performance index — the regression
	// abscissa: catalog generation multiplier scaled by mean binning.
	Perf float64
	// Model is the index into the run's model list this device runs.
	Model int
}

// Sampler expands a catalog into a deterministic device population.
// Construct with NewSampler; Device(i) is pure (same i → same device)
// and allocation-free.
type Sampler struct {
	cat    soc.Catalog
	seed   uint64
	models int
	// cum is the quantized cumulative weight table for entry selection;
	// total is its last element. Integer weights make the pick exact —
	// no float accumulation order to worry about.
	cum   []uint64
	total uint64
}

// weightQuantum scales float catalog weights to integers (1e6 keeps six
// significant digits of relative weight, far beyond catalog precision).
const weightQuantum = 1e6

// NewSampler validates the catalog and builds a sampler for it. models
// is the length of the run's model list (each device is assigned one
// model by hash); it must be >= 1.
func NewSampler(cat soc.Catalog, seed uint64, models int) (*Sampler, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if models < 1 {
		return nil, fmt.Errorf("fleet: sampler needs at least one model, got %d", models)
	}
	s := &Sampler{cat: cat, seed: seed, models: models, cum: make([]uint64, len(cat))}
	var total uint64
	for i, e := range cat {
		q := uint64(math.Round(e.Weight * weightQuantum))
		if q == 0 {
			q = 1 // a validated weight is > 0; never drop an entry to rounding
		}
		total += q
		s.cum[i] = total
	}
	s.total = total
	return s, nil
}

// Catalog returns the sampler's catalog.
func (s *Sampler) Catalog() soc.Catalog { return s.cat }

// Device fabricates fleet member i. The draw order below is part of the
// determinism contract (docs/FLEET.md): reordering the draws would
// reshuffle every seeded population.
func (s *Sampler) Device(i int) Device {
	r := newDevRand(s.seed, i)

	// Draw 1: catalog entry, by quantized population weight.
	w := r.next() % s.total
	entry := 0
	for s.cum[entry] <= w {
		entry++
	}
	sp := &s.cat[entry].Spec

	// Draws 2-6: jitters, in fixed order.
	d := Device{
		Index:    i,
		Entry:    entry,
		Tier:     sp.Tier(),
		CPUBin:   r.in(cpuBinLo, cpuBinHi),
		AccelBin: r.in(accelBinLo, accelBinHi),
		RPCMult:  r.in(rpcJitterLo, rpcJitterHi),
	}
	frac := r.in(0, tempFracMax)
	d.TempC = sp.IdleTempC + frac*(sp.MaxTempC-sp.IdleTempC)
	d.CPUDerate = 1 + thermalDerateMax*frac/tempFracMax
	d.Perf = sp.Gen * (d.CPUBin + d.AccelBin) / 2

	// Draw 7: the model this device runs.
	d.Model = int(r.next() % uint64(s.models))
	return d
}
