package arena

import "testing"

type obj struct {
	id   int
	name string
}

func TestSlabHandsOutZeroedStablePointers(t *testing.T) {
	var s Slab[obj]
	var ptrs []*obj
	for i := 0; i < 1000; i++ {
		p := s.New()
		if p.id != 0 || p.name != "" {
			t.Fatalf("object %d not zeroed: %+v", i, *p)
		}
		p.id = i
		ptrs = append(ptrs, p)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	// Growth must not have moved earlier objects.
	for i, p := range ptrs {
		if p.id != i {
			t.Fatalf("object %d moved or corrupted: id=%d", i, p.id)
		}
	}
	if got := s.Chunks(); got != (1000+chunkSize-1)/chunkSize {
		t.Fatalf("Chunks = %d, want %d", got, (1000+chunkSize-1)/chunkSize)
	}
}

func TestSlabAllocationsAmortize(t *testing.T) {
	var s Slab[obj]
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < chunkSize; i++ {
			s.New()
		}
	})
	// One chunk's worth of objects must cost at most a couple of heap
	// allocations (the chunk itself plus occasional chunks-slice growth).
	if allocs > 3 {
		t.Fatalf("%.0f allocs per %d objects, want <= 3", allocs, chunkSize)
	}
}

func TestSlabReset(t *testing.T) {
	var s Slab[obj]
	for i := 0; i < 3*chunkSize; i++ {
		p := s.New()
		p.id = i + 1
		p.name = "x"
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", s.Len())
	}
	if s.Chunks() != 1 {
		t.Fatalf("Chunks after Reset = %d, want 1 warm chunk", s.Chunks())
	}
	for i := 0; i < 2*chunkSize; i++ {
		p := s.New()
		if p.id != 0 || p.name != "" {
			t.Fatalf("recycled object %d not zeroed: %+v", i, *p)
		}
	}
}

func TestSlabResetEmpty(t *testing.T) {
	var s Slab[obj]
	s.Reset() // must not panic
	if p := s.New(); p == nil || p.id != 0 {
		t.Fatal("New after empty Reset broken")
	}
}
