// Package arena provides a chunked slab allocator for cold-path object
// batches: graph builds, plan compilation and framework bring-up
// allocate thousands of small, identically-typed, identically-lived
// objects, and the Go allocator charges one heap object (plus GC scan
// work) for each. A Slab hands out objects from pre-sized chunks, so a
// whole batch costs a handful of allocations instead of thousands.
//
// Lifecycle contract: a slab OWNS every object it ever handed out. The
// owner of the enclosing structure (a Graph owns its op slab, a
// compiled plan owns its schedule slab) is the only party allowed to
// Reset it, and may do so only when no pointer into the slab can
// outlive the reset. Nothing in this repository resets a slab that has
// been shared — fault-driven re-plans build a fresh graph/plan and
// retire the old one whole (see docs/PERF.md, "Arena lifecycle"), so a
// retired slab is simply garbage-collected with its owner and stale
// pointers into recycled memory cannot exist.
//
// A Slab is not safe for concurrent use; each builder owns its own.
package arena

// chunkSize is the number of objects per chunk. Model graphs run tens
// to a few hundred ops; 128 keeps one or two chunks per typical graph
// while bounding the waste of a nearly-empty final chunk.
const chunkSize = 128

// Slab allocates objects of type T in chunks. The zero value is ready
// to use.
type Slab[T any] struct {
	chunks [][]T
	// used counts objects handed out of the last chunk.
	used int
	// total counts objects handed out over the slab's lifetime.
	total int
}

// New returns a pointer to a zeroed T from the slab. The pointer stays
// valid until Reset; appending to the slab never moves prior objects
// (chunks are never reallocated, only added).
func (s *Slab[T]) New() *T {
	n := len(s.chunks)
	if n == 0 || s.used == len(s.chunks[n-1]) {
		s.chunks = append(s.chunks, make([]T, chunkSize))
		n++
		s.used = 0
	}
	p := &s.chunks[n-1][s.used]
	s.used++
	s.total++
	return p
}

// Len reports how many objects the slab has handed out since the last
// Reset.
func (s *Slab[T]) Len() int { return s.total }

// Chunks reports how many backing allocations the slab has made — the
// number the thousands of per-object allocations collapsed to.
func (s *Slab[T]) Chunks() int { return len(s.chunks) }

// Reset zeroes and recycles every chunk. Only the slab's owner may call
// it, and only when no pointer obtained from New can still be reached —
// see the package comment for the ownership rules.
func (s *Slab[T]) Reset() {
	var zero T
	for ci, c := range s.chunks {
		live := len(c)
		if ci == len(s.chunks)-1 {
			live = s.used
		}
		for i := 0; i < live; i++ {
			c[i] = zero
		}
	}
	s.used = 0
	s.total = 0
	if len(s.chunks) > 0 {
		// Keep one warm chunk; release the rest so a briefly-huge build
		// doesn't pin its high-water mark forever.
		s.chunks = s.chunks[:1]
		s.used = 0
	}
}
