package nn

// FuseActivations returns a copy of the graph with element-wise
// activations (ReLU, ReLU6, Sigmoid) folded into the producing
// convolution or fully-connected op — the standard TFLite/NNAPI graph
// optimization. Fusion removes the activation's separate dispatch (and,
// on delegates, its kernel launch and memory round-trip): activation
// FLOPs fold into the producer and the intermediate activation traffic
// disappears.
//
// The returned graph shares no Op structs with the input.
func FuseActivations(g *Graph) *Graph {
	out := NewGraph(g.Name, g.InputShape)
	ops := g.Ops()
	for i := 0; i < len(ops); i++ {
		op := out.NewOp()
		*op = *ops[i] // copy into the fused graph's own slab
		if fusable(op.Kind) && i+1 < len(ops) && isActivation(ops[i+1].Kind) {
			act := ops[i+1]
			// The activation's element-wise cost rides along with the
			// producer (it runs in-register on the producer's output).
			op.MACs += act.FLOPs() / 2
			op.Name = internedFusedName(op.Name, act.Kind.String())
			i++ // consume the activation
		}
		out.Append(op)
	}
	return out
}

func fusable(k OpKind) bool {
	switch k {
	case Conv2D, DepthwiseConv2D, FullyConnected, Add:
		return true
	default:
		return false
	}
}

func isActivation(k OpKind) bool {
	switch k {
	case ReLU, ReLU6, Sigmoid:
		return true
	default:
		return false
	}
}
