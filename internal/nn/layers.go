package nn

import (
	"aitax/internal/tensor"
)

// Builder constructs graphs layer by layer, tracking the current spatial
// shape and computing SAME-padding output sizes, MACs and parameter
// counts the way TFLite's converter reports them.
type Builder struct {
	g       *Graph
	h, w, c int
	seq     int // transformer sequence length, 0 for CNNs
	hidden  int
	n       int
}

// NewBuilder starts a CNN graph with an h×w×c input.
func NewBuilder(name string, h, w, c int) *Builder {
	return &Builder{g: NewGraph(name, tensor.Shape{1, h, w, c}), h: h, w: w, c: c}
}

// NewSeqBuilder starts a transformer graph over seq tokens of width hidden.
func NewSeqBuilder(name string, seq, hidden int) *Builder {
	b := &Builder{g: NewGraph(name, tensor.Shape{1, seq}), seq: seq, hidden: hidden}
	return b
}

func (b *Builder) name(kind string) string {
	b.n++
	return internedName(kind, b.n)
}

// add copies op into the graph's op slab and appends it, so layer
// methods build composite literals on the stack and the graph pays a
// chunk allocation per ~128 ops instead of one heap object per op.
func (b *Builder) add(op Op) *Op {
	p := b.g.NewOp()
	*p = op
	return b.g.Append(p)
}

func outDim(in, stride int) int { return (in + stride - 1) / stride } // SAME padding

// Shape returns the builder's current activation shape (h, w, c).
func (b *Builder) Shape() (h, w, c int) { return b.h, b.w, b.c }

// Conv appends a 2-D convolution with SAME padding, k×k kernel, the given
// stride and output channels, including bias parameters.
func (b *Builder) Conv(outC, k, stride int) *Builder {
	oh, ow := outDim(b.h, stride), outDim(b.w, stride)
	b.add(Op{
		Name: b.name("conv"), Kind: Conv2D,
		InH: b.h, InW: b.w, InC: b.c,
		OutH: oh, OutW: ow, OutC: outC,
		KH: k, KW: k, Stride: stride,
		Params: int64(k)*int64(k)*int64(b.c)*int64(outC) + int64(outC),
		MACs:   int64(oh) * int64(ow) * int64(outC) * int64(k) * int64(k) * int64(b.c),
	})
	b.h, b.w, b.c = oh, ow, outC
	return b
}

// ConvRect appends a rectangular-kernel convolution (kh×kw), SAME padding
// and stride 1 — the factorized 1×7/7×1 pairs of Inception v3/v4.
func (b *Builder) ConvRect(outC, kh, kw int) *Builder {
	b.add(Op{
		Name: b.name("conv"), Kind: Conv2D,
		InH: b.h, InW: b.w, InC: b.c,
		OutH: b.h, OutW: b.w, OutC: outC,
		KH: kh, KW: kw, Stride: 1,
		Params: int64(kh)*int64(kw)*int64(b.c)*int64(outC) + int64(outC),
		MACs:   int64(b.h) * int64(b.w) * int64(outC) * int64(kh) * int64(kw) * int64(b.c),
	})
	b.c = outC
	return b
}

// MaxPoolValid appends a k×k max pool with VALID padding
// (out = (in-k)/stride + 1), the AlexNet-era convention.
func (b *Builder) MaxPoolValid(k, stride int) *Builder {
	oh := (b.h-k)/stride + 1
	ow := (b.w-k)/stride + 1
	b.add(Op{Name: b.name("maxpool"), Kind: MaxPool,
		InH: b.h, InW: b.w, InC: b.c, OutH: oh, OutW: ow, OutC: b.c,
		KH: k, KW: k, Stride: stride})
	b.h, b.w = oh, ow
	return b
}

// DilatedConv appends an atrous convolution (DeepLab's ASPP); dilation
// affects the receptive field, not the MAC count, and SAME padding keeps
// the spatial size.
func (b *Builder) DilatedConv(outC, k, dilation int) *Builder {
	b.add(Op{
		Name: b.name("atrous"), Kind: Conv2D,
		InH: b.h, InW: b.w, InC: b.c,
		OutH: b.h, OutW: b.w, OutC: outC,
		KH: k, KW: k, Stride: 1, Dilation: dilation,
		Params: int64(k)*int64(k)*int64(b.c)*int64(outC) + int64(outC),
		MACs:   int64(b.h) * int64(b.w) * int64(outC) * int64(k) * int64(k) * int64(b.c),
	})
	b.c = outC
	return b
}

// DWConv appends a depthwise convolution (channel multiplier 1).
func (b *Builder) DWConv(k, stride int) *Builder {
	oh, ow := outDim(b.h, stride), outDim(b.w, stride)
	b.add(Op{
		Name: b.name("dwconv"), Kind: DepthwiseConv2D,
		InH: b.h, InW: b.w, InC: b.c,
		OutH: oh, OutW: ow, OutC: b.c,
		KH: k, KW: k, Stride: stride,
		Params: int64(k)*int64(k)*int64(b.c) + int64(b.c),
		MACs:   int64(oh) * int64(ow) * int64(b.c) * int64(k) * int64(k),
	})
	b.h, b.w = oh, ow
	return b
}

// ReLU6 appends the mobile-standard clipped activation.
func (b *Builder) ReLU6() *Builder {
	b.add(Op{Name: b.name("relu6"), Kind: ReLU6,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	return b
}

// ReLU appends a plain rectifier.
func (b *Builder) ReLU() *Builder {
	b.add(Op{Name: b.name("relu"), Kind: ReLU,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	return b
}

// Sigmoid appends a logistic activation.
func (b *Builder) Sigmoid() *Builder {
	b.add(Op{Name: b.name("sigmoid"), Kind: Sigmoid,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	return b
}

// Separable appends a MobileNet-style depthwise-separable block:
// 3×3 depthwise (stride s) + ReLU6 + 1×1 pointwise + ReLU6.
func (b *Builder) Separable(outC, stride int) *Builder {
	return b.DWConv(3, stride).ReLU6().Conv(outC, 1, 1).ReLU6()
}

// InvertedResidual appends an MBConv block (MobileNet v2 / EfficientNet):
// 1×1 expand (×expand) + 3×3 depthwise + 1×1 project, with a residual Add
// when the shapes allow it.
func (b *Builder) InvertedResidual(outC, stride, expand int) *Builder {
	inC := b.c
	mid := inC * expand
	b.Conv(mid, 1, 1).ReLU6()
	b.DWConv(3, stride).ReLU6()
	b.Conv(outC, 1, 1)
	if stride == 1 && inC == outC {
		b.add(Op{Name: b.name("add"), Kind: Add,
			InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	}
	return b
}

// MaxPool appends a k×k max pooling with the given stride.
func (b *Builder) MaxPool(k, stride int) *Builder {
	oh, ow := outDim(b.h, stride), outDim(b.w, stride)
	b.add(Op{Name: b.name("maxpool"), Kind: MaxPool,
		InH: b.h, InW: b.w, InC: b.c, OutH: oh, OutW: ow, OutC: b.c,
		KH: k, KW: k, Stride: stride})
	b.h, b.w = oh, ow
	return b
}

// AvgPool appends a k×k average pooling with the given stride.
func (b *Builder) AvgPool(k, stride int) *Builder {
	oh, ow := outDim(b.h, stride), outDim(b.w, stride)
	b.add(Op{Name: b.name("avgpool"), Kind: AvgPool,
		InH: b.h, InW: b.w, InC: b.c, OutH: oh, OutW: ow, OutC: b.c,
		KH: k, KW: k, Stride: stride})
	b.h, b.w = oh, ow
	return b
}

// GlobalAvgPool reduces the spatial extent to 1×1.
func (b *Builder) GlobalAvgPool() *Builder {
	b.add(Op{Name: b.name("gap"), Kind: AvgPool,
		InH: b.h, InW: b.w, InC: b.c, OutH: 1, OutW: 1, OutC: b.c,
		KH: b.h, KW: b.w, Stride: 1})
	b.h, b.w = 1, 1
	return b
}

// LRN appends AlexNet-style local response normalization.
func (b *Builder) LRN() *Builder {
	b.add(Op{Name: b.name("lrn"), Kind: LocalResponseNorm,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	return b
}

// FC appends a fully-connected layer over the flattened activation.
func (b *Builder) FC(out int) *Builder {
	in := int64(b.h) * int64(b.w) * int64(b.c)
	b.add(Op{Name: b.name("fc"), Kind: FullyConnected,
		InH: 1, InW: 1, InC: int(in), OutH: 1, OutW: 1, OutC: out,
		Params: in*int64(out) + int64(out),
		MACs:   in * int64(out)})
	b.h, b.w, b.c = 1, 1, out
	return b
}

// Softmax appends the final classification softmax.
func (b *Builder) Softmax() *Builder {
	b.add(Op{Name: b.name("softmax"), Kind: Softmax,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: b.c})
	return b
}

// Upsample appends an in-graph bilinear resize to h×w (DeepLab decoder).
func (b *Builder) Upsample(h, w int) *Builder {
	b.add(Op{Name: b.name("resize"), Kind: ResizeBilinearOp,
		InH: b.h, InW: b.w, InC: b.c, OutH: h, OutW: w, OutC: b.c})
	b.h, b.w = h, w
	return b
}

// Concat appends a channel concatenation that widens the activation to
// totalC channels (modelling an inception-module join).
func (b *Builder) Concat(totalC int) *Builder {
	b.add(Op{Name: b.name("concat"), Kind: Concat,
		InH: b.h, InW: b.w, InC: b.c, OutH: b.h, OutW: b.w, OutC: totalC})
	b.c = totalC
	return b
}

// --- Transformer layers (Mobile BERT) ---

// Embedding appends a token-embedding lookup over a vocab of the given size.
func (b *Builder) Embedding(vocab int) *Builder {
	b.add(Op{Name: b.name("embed"), Kind: Embedding,
		Seq: b.seq, Hidden: b.hidden, Inner: b.hidden,
		Params: int64(vocab) * int64(b.hidden)})
	return b
}

// TransformerLayer appends one encoder layer: Q/K/V/O projections,
// attention score and context matmuls, layer norms, and the FFN.
func (b *Builder) TransformerLayer(heads, inner int) *Builder {
	s, h := int64(b.seq), int64(b.hidden)
	proj := func(label string) {
		b.add(Op{Name: b.name(label), Kind: MatMul,
			Seq: b.seq, Hidden: b.hidden, Inner: b.hidden, Heads: heads,
			Params: h*h + h,
			MACs:   s * h * h})
	}
	proj("attn_q")
	proj("attn_k")
	proj("attn_v")
	// scores = QK^T: seq×seq×hidden; context = scores·V: same cost.
	b.add(Op{Name: b.name("attn_scores"), Kind: MatMul,
		Seq: b.seq, Hidden: b.hidden, Inner: b.seq, Heads: heads,
		MACs: s * s * h})
	b.add(Op{Name: b.name("attn_softmax"), Kind: Softmax,
		Seq: b.seq, Hidden: b.seq, Inner: b.seq})
	b.add(Op{Name: b.name("attn_context"), Kind: MatMul,
		Seq: b.seq, Hidden: b.seq, Inner: b.hidden, Heads: heads,
		MACs: s * s * h})
	proj("attn_out")
	b.add(Op{Name: b.name("ln_attn"), Kind: LayerNorm,
		Seq: b.seq, Hidden: b.hidden, Inner: b.hidden, Params: 2 * h})
	// FFN: hidden→inner→hidden with GELU.
	b.add(Op{Name: b.name("ffn_in"), Kind: MatMul,
		Seq: b.seq, Hidden: b.hidden, Inner: inner,
		Params: h*int64(inner) + int64(inner),
		MACs:   s * h * int64(inner)})
	b.add(Op{Name: b.name("gelu"), Kind: GELU,
		Seq: b.seq, Hidden: inner, Inner: inner})
	b.add(Op{Name: b.name("ffn_out"), Kind: MatMul,
		Seq: b.seq, Hidden: inner, Inner: b.hidden,
		Params: int64(inner)*h + h,
		MACs:   s * int64(inner) * h})
	b.add(Op{Name: b.name("ln_ffn"), Kind: LayerNorm,
		Seq: b.seq, Hidden: b.hidden, Inner: b.hidden, Params: 2 * h})
	return b
}

// SeqClassifier appends the pooled classification head.
func (b *Builder) SeqClassifier(classes int) *Builder {
	h := int64(b.hidden)
	b.add(Op{Name: b.name("pool_fc"), Kind: FullyConnected,
		Seq: 1, Hidden: b.hidden, Inner: classes,
		Params: h*int64(classes) + int64(classes),
		MACs:   h * int64(classes)})
	b.add(Op{Name: b.name("softmax"), Kind: Softmax,
		Seq: 1, Hidden: classes, Inner: classes})
	return b
}

// SetChannels rewinds the tracked channel count without adding an op.
// Branching modules (Inception, SqueezeNet fire) lay parallel branches
// down sequentially: each branch resets the input channels with this,
// then Concat joins the widths. MAC accounting stays exact because each
// branch charges for its true input width.
func (b *Builder) SetChannels(c int) *Builder {
	b.c = c
	return b
}

// SetSpatial rewinds the tracked spatial size without adding an op (for
// branches that pool or stride differently before a join).
func (b *Builder) SetSpatial(h, w int) *Builder {
	b.h, b.w = h, w
	return b
}

// Graph finalizes and returns the built graph.
func (b *Builder) Graph() *Graph { return b.g }
