// Package nn defines the neural-network graph intermediate representation
// used by the model zoo and the runtimes: a sequence of operations, each
// carrying enough shape information to account for its FLOPs, weight
// footprint and activation traffic. Frameworks partition and schedule at
// this "operation" granularity, exactly as NNAPI does (paper §II-D).
package nn

import (
	"fmt"

	"aitax/internal/tensor"
	"aitax/internal/work"
)

// OpKind enumerates the operation types the model zoo uses.
type OpKind int

// Operation kinds. The set covers the eleven Table-I models: CNN ops,
// SSD/DeepLab heads, and MobileBERT's transformer ops.
const (
	Conv2D OpKind = iota
	DepthwiseConv2D
	FullyConnected
	AvgPool
	MaxPool
	ReLU
	ReLU6
	Sigmoid
	Softmax
	Add
	Mul
	Concat
	Reshape
	ResizeBilinearOp // in-graph upsampling (DeepLab decoder)
	MatMul           // attention score/context products
	LayerNorm
	GELU
	Embedding
	LocalResponseNorm // AlexNet-era normalization
)

var opKindNames = map[OpKind]string{
	Conv2D:            "CONV_2D",
	DepthwiseConv2D:   "DEPTHWISE_CONV_2D",
	FullyConnected:    "FULLY_CONNECTED",
	AvgPool:           "AVERAGE_POOL_2D",
	MaxPool:           "MAX_POOL_2D",
	ReLU:              "RELU",
	ReLU6:             "RELU6",
	Sigmoid:           "LOGISTIC",
	Softmax:           "SOFTMAX",
	Add:               "ADD",
	Mul:               "MUL",
	Concat:            "CONCATENATION",
	Reshape:           "RESHAPE",
	ResizeBilinearOp:  "RESIZE_BILINEAR",
	MatMul:            "BATCH_MATMUL",
	LayerNorm:         "LAYER_NORM",
	GELU:              "GELU",
	Embedding:         "EMBEDDING_LOOKUP",
	LocalResponseNorm: "LOCAL_RESPONSE_NORMALIZATION",
}

// String returns the NNAPI-style operation name.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", int(k))
}

// AllOpKinds lists every kind, in declaration order.
func AllOpKinds() []OpKind {
	out := make([]OpKind, 0, len(opKindNames))
	for k := Conv2D; k <= LocalResponseNorm; k++ {
		out = append(out, k)
	}
	return out
}

// Op is one operation in a model graph. Spatial ops use the H/W/C fields;
// transformer ops use Seq/Hidden/Inner. Params is the weight element
// count; MACs is the multiply-accumulate count, both set by the layer
// builders in layers.go.
type Op struct {
	Name string
	Kind OpKind

	// Spatial shapes (NHWC, batch 1).
	InH, InW, InC    int
	OutH, OutW, OutC int
	KH, KW           int
	Stride           int
	Dilation         int

	// Transformer shapes.
	Seq, Hidden, Inner, Heads int

	Params int64 // weight elements
	MACs   int64 // multiply-accumulates
}

// FLOPs returns the floating-point operation count (2 per MAC, or an
// element-wise estimate for non-MAC ops).
func (o *Op) FLOPs() int64 {
	if o.MACs > 0 {
		return 2 * o.MACs
	}
	n := o.OutElems()
	switch o.Kind {
	case ReLU, ReLU6, Add, Mul, Reshape, Concat:
		return n
	case Sigmoid, Softmax, GELU:
		return 8 * n
	case LayerNorm:
		return 6 * n
	case AvgPool, MaxPool:
		k := int64(o.KH * o.KW)
		if k == 0 {
			k = 1
		}
		return n * k
	case ResizeBilinearOp:
		return 8 * n
	case LocalResponseNorm:
		return 10 * n
	case Embedding:
		return n
	default:
		return n
	}
}

// OutElems returns the output activation element count.
func (o *Op) OutElems() int64 {
	if o.Seq > 0 {
		inner := o.Inner
		if inner == 0 {
			inner = o.Hidden
		}
		return int64(o.Seq) * int64(inner)
	}
	h, w, c := o.OutH, o.OutW, o.OutC
	if h == 0 {
		h = 1
	}
	if w == 0 {
		w = 1
	}
	if c == 0 {
		c = 1
	}
	return int64(h) * int64(w) * int64(c)
}

// InElems returns the input activation element count.
func (o *Op) InElems() int64 {
	if o.Seq > 0 {
		hidden := o.Hidden
		if hidden == 0 {
			hidden = 1
		}
		return int64(o.Seq) * int64(hidden)
	}
	h, w, c := o.InH, o.InW, o.InC
	if h == 0 {
		h = 1
	}
	if w == 0 {
		w = 1
	}
	if c == 0 {
		c = 1
	}
	return int64(h) * int64(w) * int64(c)
}

// WeightBytes returns the weight footprint for element type dt.
func (o *Op) WeightBytes(dt tensor.DType) int64 {
	return o.Params * int64(dt.Size())
}

// ActivationBytes returns input+output activation traffic for dt.
func (o *Op) ActivationBytes(dt tensor.DType) int64 {
	return (o.InElems() + o.OutElems()) * int64(dt.Size())
}

// Work returns the op's device-independent compute demand for dt.
func (o *Op) Work(dt tensor.DType) work.Work {
	return work.Work{
		Ops:          o.FLOPs(),
		Bytes:        o.ActivationBytes(dt) + o.WeightBytes(dt),
		Vectorizable: true,
	}
}

// Validate checks the op's shape bookkeeping.
func (o *Op) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("nn: op with empty name (kind %v)", o.Kind)
	}
	if o.MACs < 0 || o.Params < 0 {
		return fmt.Errorf("nn: op %s has negative MACs/Params", o.Name)
	}
	switch o.Kind {
	case Conv2D, DepthwiseConv2D:
		if o.KH <= 0 || o.KW <= 0 || o.Stride <= 0 {
			return fmt.Errorf("nn: op %s missing kernel/stride", o.Name)
		}
		if o.OutH <= 0 || o.OutW <= 0 || o.OutC <= 0 {
			return fmt.Errorf("nn: op %s missing output shape", o.Name)
		}
		if o.MACs == 0 {
			return fmt.Errorf("nn: conv op %s has zero MACs", o.Name)
		}
	case FullyConnected, MatMul:
		if o.MACs == 0 {
			return fmt.Errorf("nn: matmul op %s has zero MACs", o.Name)
		}
	}
	return nil
}
