package nn

import (
	"testing"
	"testing/quick"

	"aitax/internal/tensor"
)

func TestConvMACs(t *testing.T) {
	// 224x224x3 -> conv 32 3x3 stride 2 (MobileNet first layer):
	// out 112x112x32, MACs = 112*112*32*3*3*3 = 10,838,016.
	b := NewBuilder("m", 224, 224, 3)
	b.Conv(32, 3, 2)
	op := b.Graph().Ops()[0]
	if op.MACs != 10838016 {
		t.Fatalf("conv MACs = %d, want 10838016", op.MACs)
	}
	if op.Params != 3*3*3*32+32 {
		t.Fatalf("conv params = %d", op.Params)
	}
	if op.OutH != 112 || op.OutW != 112 {
		t.Fatalf("conv out = %dx%d, want 112x112", op.OutH, op.OutW)
	}
}

func TestDWConvMACs(t *testing.T) {
	b := NewBuilder("m", 112, 112, 32)
	b.DWConv(3, 1)
	op := b.Graph().Ops()[0]
	if op.MACs != 112*112*32*9 {
		t.Fatalf("dwconv MACs = %d", op.MACs)
	}
	if op.Params != 9*32+32 {
		t.Fatalf("dwconv params = %d", op.Params)
	}
}

func TestFCShape(t *testing.T) {
	b := NewBuilder("m", 1, 1, 1024)
	b.FC(1001)
	op := b.Graph().Ops()[0]
	if op.MACs != 1024*1001 {
		t.Fatalf("fc MACs = %d", op.MACs)
	}
	if op.Params != 1024*1001+1001 {
		t.Fatalf("fc params = %d", op.Params)
	}
}

func TestSamePaddingDims(t *testing.T) {
	b := NewBuilder("m", 7, 7, 8)
	b.Conv(8, 3, 2) // SAME: ceil(7/2) = 4
	h, w, _ := b.Shape()
	if h != 4 || w != 4 {
		t.Fatalf("SAME output = %dx%d, want 4x4", h, w)
	}
}

func TestSeparableBlockStructure(t *testing.T) {
	b := NewBuilder("m", 112, 112, 32)
	b.Separable(64, 1)
	g := b.Graph()
	kinds := []OpKind{DepthwiseConv2D, ReLU6, Conv2D, ReLU6}
	if g.NumOps() != 4 {
		t.Fatalf("separable ops = %d, want 4", g.NumOps())
	}
	for i, k := range kinds {
		if g.Ops()[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, g.Ops()[i].Kind, k)
		}
	}
}

func TestInvertedResidualAddsWhenShapesMatch(t *testing.T) {
	b := NewBuilder("m", 28, 28, 32)
	b.InvertedResidual(32, 1, 6)
	hist := b.Graph().KindHistogram()
	if hist[Add] != 1 {
		t.Fatal("same-shape MBConv must add a residual")
	}
	b2 := NewBuilder("m2", 28, 28, 32)
	b2.InvertedResidual(64, 2, 6)
	if b2.Graph().KindHistogram()[Add] != 0 {
		t.Fatal("strided MBConv must not add a residual")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	b := NewBuilder("m", 7, 7, 1024)
	b.GlobalAvgPool()
	h, w, c := b.Shape()
	if h != 1 || w != 1 || c != 1024 {
		t.Fatalf("gap shape = %dx%dx%d", h, w, c)
	}
}

func TestTransformerLayerCost(t *testing.T) {
	b := NewSeqBuilder("bert", 128, 512)
	b.TransformerLayer(4, 2048)
	g := b.Graph()
	// 4 projections at s*h*h + 2 attention matmuls at s*s*h + FFN 2*s*h*inner.
	s, h, inner := int64(128), int64(512), int64(2048)
	want := 4*s*h*h + 2*s*s*h + 2*s*h*inner
	if g.TotalMACs() != want {
		t.Fatalf("transformer MACs = %d, want %d", g.TotalMACs(), want)
	}
}

func TestGraphValidate(t *testing.T) {
	b := NewBuilder("ok", 8, 8, 3)
	b.Conv(8, 3, 1).ReLU().FC(10).Softmax()
	if err := b.Graph().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	empty := NewGraph("empty", tensor.Shape{1})
	if err := empty.Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}

	dup := NewGraph("dup", tensor.Shape{1})
	dup.Append(&Op{Name: "x", Kind: ReLU, OutC: 1})
	dup.Append(&Op{Name: "x", Kind: ReLU, OutC: 1})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate names accepted")
	}

	badConv := NewGraph("bad", tensor.Shape{1})
	badConv.Append(&Op{Name: "c", Kind: Conv2D})
	if err := badConv.Validate(); err == nil {
		t.Fatal("conv without shape accepted")
	}
}

func TestFLOPsIsTwiceMACs(t *testing.T) {
	op := &Op{Name: "c", Kind: Conv2D, MACs: 100}
	if op.FLOPs() != 200 {
		t.Fatalf("FLOPs = %d, want 200", op.FLOPs())
	}
}

func TestElementwiseFLOPs(t *testing.T) {
	op := &Op{Name: "r", Kind: ReLU, OutH: 4, OutW: 4, OutC: 2}
	if op.FLOPs() != 32 {
		t.Fatalf("relu FLOPs = %d, want 32", op.FLOPs())
	}
	pool := &Op{Name: "p", Kind: MaxPool, OutH: 2, OutW: 2, OutC: 2, KH: 3, KW: 3}
	if pool.FLOPs() != 8*9 {
		t.Fatalf("pool FLOPs = %d, want 72", pool.FLOPs())
	}
}

func TestWeightActivationBytes(t *testing.T) {
	op := &Op{Name: "f", Kind: FullyConnected, InH: 1, InW: 1, InC: 10,
		OutH: 1, OutW: 1, OutC: 5, Params: 55, MACs: 50}
	if op.WeightBytes(tensor.Float32) != 220 {
		t.Fatalf("fp32 weights = %d", op.WeightBytes(tensor.Float32))
	}
	if op.WeightBytes(tensor.Int8) != 55 {
		t.Fatalf("int8 weights = %d", op.WeightBytes(tensor.Int8))
	}
	if op.ActivationBytes(tensor.Float32) != (10+5)*4 {
		t.Fatalf("act bytes = %d", op.ActivationBytes(tensor.Float32))
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range AllOpKinds() {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
	if Conv2D.String() != "CONV_2D" {
		t.Fatalf("conv name = %s", Conv2D.String())
	}
}

func TestGraphAggregates(t *testing.T) {
	b := NewBuilder("agg", 32, 32, 3)
	b.Conv(16, 3, 1).ReLU().Conv(32, 3, 2).ReLU().FC(10)
	g := b.Graph()
	var macs, params int64
	for _, op := range g.Ops() {
		macs += op.MACs
		params += op.Params
	}
	if g.TotalMACs() != macs || g.TotalParams() != params {
		t.Fatal("aggregates disagree with op sum")
	}
	if g.TotalFLOPs() < 2*macs {
		t.Fatal("FLOPs must be at least 2×MACs")
	}
	if g.Summary() == "" || g.Dump() == "" {
		t.Fatal("summary/dump empty")
	}
}

func TestQuickConvOutputDims(t *testing.T) {
	// Property: SAME-padding output dims are ceil(in/stride) for any size.
	f := func(in, stride uint8) bool {
		i, s := int(in%200)+1, int(stride%3)+1
		b := NewBuilder("q", i, i, 3)
		b.Conv(4, 3, s)
		h, w, _ := b.Shape()
		want := (i + s - 1) / s
		return h == want && w == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUpsampleAndConcat(t *testing.T) {
	b := NewBuilder("d", 33, 33, 256)
	b.Upsample(513, 513)
	h, w, _ := b.Shape()
	if h != 513 || w != 513 {
		t.Fatalf("upsample = %dx%d", h, w)
	}
	b.Concat(512)
	_, _, c := b.Shape()
	if c != 512 {
		t.Fatalf("concat c = %d", c)
	}
}

func TestEmbeddingParams(t *testing.T) {
	b := NewSeqBuilder("e", 128, 512)
	b.Embedding(30522)
	op := b.Graph().Ops()[0]
	if op.Params != 30522*512 {
		t.Fatalf("embedding params = %d", op.Params)
	}
}

// zooGraph rebuilds a model graph by name without importing the models
// package (which would create an import cycle in tests).
func zooGraph(t *testing.T, name string) *Graph {
	t.Helper()
	switch name {
	case "MobileNet 1.0 v1":
		b := NewBuilder(name, 224, 224, 3)
		b.Conv(32, 3, 2).ReLU6()
		for _, c := range []struct{ c, s int }{{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}} {
			b.Separable(c.c, c.s)
		}
		b.GlobalAvgPool().FC(1001).Softmax()
		return b.Graph()
	case "EfficientNet-Lite0":
		b := NewBuilder(name, 224, 224, 3)
		b.Conv(32, 3, 2).ReLU6()
		b.InvertedResidual(16, 1, 1)
		b.InvertedResidual(24, 2, 6)
		b.InvertedResidual(24, 1, 6)
		b.Conv(1280, 1, 1).ReLU6().GlobalAvgPool().FC(1001).Softmax()
		return b.Graph()
	default: // "Inception v3" stand-in: stem only, enough structure
		b := NewBuilder(name, 299, 299, 3)
		b.Conv(32, 3, 2).ReLU().Conv(32, 3, 1).ReLU().Conv(64, 3, 1).ReLU().MaxPool(3, 2)
		b.GlobalAvgPool().FC(1001).Softmax()
		return b.Graph()
	}
}
