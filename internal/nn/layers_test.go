package nn

import (
	"testing"

	"aitax/internal/tensor"
)

func TestConvRect(t *testing.T) {
	b := NewBuilder("r", 17, 17, 128)
	b.ConvRect(192, 1, 7)
	op := b.Graph().Ops()[0]
	if op.KH != 1 || op.KW != 7 {
		t.Fatalf("kernel = %dx%d", op.KH, op.KW)
	}
	if op.OutH != 17 || op.OutW != 17 {
		t.Fatal("rect conv must keep spatial size (SAME, stride 1)")
	}
	want := int64(17*17) * 192 * 7 * 128
	if op.MACs != want {
		t.Fatalf("MACs = %d, want %d", op.MACs, want)
	}
	// Factorized 1x7 + 7x1 must be ~half the MACs of a full 7x7.
	full := NewBuilder("f", 17, 17, 128)
	full.Conv(192, 7, 1)
	pair := 2 * op.MACs
	if pair*3 > full.Graph().Ops()[0].MACs*2 {
		t.Fatal("factorized pair should be much cheaper than full 7x7")
	}
}

func TestMaxPoolValid(t *testing.T) {
	b := NewBuilder("p", 57, 57, 96)
	b.MaxPoolValid(3, 2)
	h, w, _ := b.Shape()
	if h != 28 || w != 28 { // (57-3)/2+1
		t.Fatalf("valid pool dims = %dx%d, want 28x28", h, w)
	}
}

func TestDilatedConv(t *testing.T) {
	b := NewBuilder("d", 33, 33, 320)
	b.DilatedConv(256, 3, 12)
	op := b.Graph().Ops()[0]
	if op.Dilation != 12 {
		t.Fatalf("dilation = %d", op.Dilation)
	}
	if op.OutH != 33 || op.OutW != 33 {
		t.Fatal("atrous conv must preserve spatial size")
	}
	// Dilation does not change MAC count.
	plain := NewBuilder("p", 33, 33, 320)
	plain.DilatedConv(256, 3, 1)
	if op.MACs != plain.Graph().Ops()[0].MACs {
		t.Fatal("dilation must not change MACs")
	}
}

func TestActivationAndPoolBuilders(t *testing.T) {
	b := NewBuilder("a", 8, 8, 4)
	b.Sigmoid().LRN().MaxPool(2, 2).AvgPool(2, 2)
	kinds := []OpKind{Sigmoid, LocalResponseNorm, MaxPool, AvgPool}
	for i, k := range kinds {
		if b.Graph().Ops()[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, b.Graph().Ops()[i].Kind, k)
		}
	}
	h, w, _ := b.Shape()
	if h != 2 || w != 2 {
		t.Fatalf("pooled dims = %dx%d", h, w)
	}
}

func TestSetChannelsAndSpatial(t *testing.T) {
	b := NewBuilder("s", 10, 10, 3)
	b.SetChannels(64).SetSpatial(5, 6)
	h, w, c := b.Shape()
	if h != 5 || w != 6 || c != 64 {
		t.Fatalf("shape = %d,%d,%d", h, w, c)
	}
	if b.Graph().NumOps() != 0 {
		t.Fatal("set helpers must not append ops")
	}
}

func TestSeqClassifier(t *testing.T) {
	b := NewSeqBuilder("c", 128, 384)
	b.SeqClassifier(2)
	g := b.Graph()
	if g.NumOps() != 2 {
		t.Fatalf("ops = %d", g.NumOps())
	}
	fc := g.Ops()[0]
	if fc.Kind != FullyConnected || fc.MACs != 384*2 {
		t.Fatalf("classifier head = %+v", fc)
	}
	if g.Ops()[1].Kind != Softmax {
		t.Fatal("missing softmax")
	}
}

func TestOpWork(t *testing.T) {
	op := &Op{Name: "c", Kind: Conv2D, InH: 4, InW: 4, InC: 3,
		OutH: 4, OutW: 4, OutC: 8, KH: 3, KW: 3, Stride: 1,
		Params: 216, MACs: 3456}
	w := op.Work(tensor.Float32)
	if w.Ops != 2*3456 {
		t.Fatalf("work ops = %d", w.Ops)
	}
	if !w.Vectorizable {
		t.Fatal("conv work must be vectorizable")
	}
	wi := op.Work(tensor.Int8)
	if wi.Bytes >= w.Bytes {
		t.Fatal("int8 work must move fewer bytes")
	}
}

func TestGraphWeightBytes(t *testing.T) {
	b := NewBuilder("w", 8, 8, 3)
	b.Conv(4, 3, 1)
	g := b.Graph()
	if g.WeightBytes(tensor.Float32) != g.TotalParams()*4 {
		t.Fatal("fp32 weight bytes wrong")
	}
	if g.WeightBytes(tensor.UInt8) != g.TotalParams() {
		t.Fatal("int8 weight bytes wrong")
	}
}

func TestSeqOpElems(t *testing.T) {
	op := &Op{Name: "m", Kind: MatMul, Seq: 128, Hidden: 384, Inner: 1536, MACs: 1}
	if op.OutElems() != 128*1536 {
		t.Fatalf("seq out elems = %d", op.OutElems())
	}
	if op.InElems() != 128*384 {
		t.Fatalf("seq in elems = %d", op.InElems())
	}
}

func TestFLOPsEstimatesPerKind(t *testing.T) {
	for _, k := range []OpKind{Sigmoid, Softmax, GELU, LayerNorm, ResizeBilinearOp, LocalResponseNorm, Embedding, Concat} {
		op := &Op{Name: "x", Kind: k, OutH: 2, OutW: 2, OutC: 2}
		if op.FLOPs() <= 0 {
			t.Fatalf("%v FLOPs must be positive", k)
		}
	}
}

func TestValidateMatMulNeedsMACs(t *testing.T) {
	op := &Op{Name: "m", Kind: MatMul, Seq: 4, Hidden: 4}
	if err := op.Validate(); err == nil {
		t.Fatal("matmul without MACs accepted")
	}
	op.MACs = 64
	if err := op.Validate(); err != nil {
		t.Fatal(err)
	}
	neg := &Op{Name: "n", Kind: ReLU, MACs: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative MACs accepted")
	}
	unnamed := &Op{Kind: ReLU}
	if err := unnamed.Validate(); err == nil {
		t.Fatal("unnamed op accepted")
	}
}

func TestFuseActivations(t *testing.T) {
	b := NewBuilder("f", 28, 28, 16)
	b.Conv(32, 3, 1).ReLU6().Conv(32, 1, 1).ReLU().FC(10).Softmax()
	g := b.Graph()
	fused := FuseActivations(g)
	// conv+relu6, conv+relu collapse; fc and softmax stay (softmax is
	// not a fusable activation).
	if fused.NumOps() != g.NumOps()-2 {
		t.Fatalf("fused ops = %d, want %d", fused.NumOps(), g.NumOps()-2)
	}
	if fused.Ops()[0].Kind != Conv2D || fused.Ops()[0].Name == g.Ops()[0].Name {
		t.Fatal("first op must be the renamed fused conv")
	}
	// Total FLOPs are preserved (activation cost folded, not dropped).
	if fused.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatalf("fused FLOPs %d != original %d", fused.TotalFLOPs(), g.TotalFLOPs())
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original graph is untouched.
	if g.Ops()[1].Kind != ReLU6 {
		t.Fatal("fusion mutated the input graph")
	}
}

func TestFuseActivationsNoOpWhenNothingToFuse(t *testing.T) {
	b := NewBuilder("n", 8, 8, 4)
	b.MaxPool(2, 2).AvgPool(2, 2)
	g := b.Graph()
	if FuseActivations(g).NumOps() != g.NumOps() {
		t.Fatal("pool-only graph must be unchanged")
	}
}

func TestFuseActivationsWholeZoo(t *testing.T) {
	// Property over the zoo: fusion preserves total FLOPs and never
	// leaves a fusable-activation pair adjacent.
	for _, name := range []string{"MobileNet 1.0 v1", "EfficientNet-Lite0", "Inception v3"} {
		g := zooGraph(t, name)
		fused := FuseActivations(g)
		if fused.TotalFLOPs() != g.TotalFLOPs() {
			t.Fatalf("%s: FLOPs changed under fusion", name)
		}
		ops := fused.Ops()
		for i := 0; i+1 < len(ops); i++ {
			if fusable(ops[i].Kind) && isActivation(ops[i+1].Kind) {
				t.Fatalf("%s: unfused pair at %d (%v -> %v)", name, i, ops[i].Kind, ops[i+1].Kind)
			}
		}
		if fused.NumOps() >= g.NumOps() {
			t.Fatalf("%s: fusion removed nothing", name)
		}
	}
}
