package nn

import (
	"fmt"
	"strings"

	"aitax/internal/arena"
	"aitax/internal/tensor"
)

// Graph is an ordered operation list — the granularity at which NNAPI
// partitions a model across devices (§II-D). The list order is a valid
// topological execution order.
type Graph struct {
	Name       string
	InputShape tensor.Shape
	ops        []*Op
	// slab backs the ops NewOp hands out. The graph owns it for life:
	// nothing resets it while the graph is reachable, and a graph retired
	// by a fault re-plan takes its slab (and every op in it) with it.
	slab arena.Slab[Op]
}

// NewGraph creates an empty graph with the given model input shape.
func NewGraph(name string, input tensor.Shape) *Graph {
	return &Graph{Name: name, InputShape: input.Clone()}
}

// NewOp allocates a zeroed op from the graph's slab. Builders use it so
// a whole graph build costs a handful of chunk allocations instead of
// one heap object per op. Slab-allocated ops live exactly as long as
// the graph; callers that need an op to outlive its graph must copy it.
func (g *Graph) NewOp() *Op { return g.slab.New() }

// Append adds an op to the end of the graph and returns it for chaining.
func (g *Graph) Append(op *Op) *Op {
	if g.ops == nil {
		// Typical Table-I graphs run 30-600 ops; one pre-sized slice
		// absorbs most appends without regrowth.
		g.ops = make([]*Op, 0, 64)
	}
	g.ops = append(g.ops, op)
	return op
}

// Ops returns the operation list (not a copy; callers must not mutate).
func (g *Graph) Ops() []*Op { return g.ops }

// NumOps returns the operation count.
func (g *Graph) NumOps() int { return len(g.ops) }

// TotalMACs sums multiply-accumulates across the graph.
func (g *Graph) TotalMACs() int64 {
	var n int64
	for _, op := range g.ops {
		n += op.MACs
	}
	return n
}

// TotalFLOPs sums FLOPs across the graph.
func (g *Graph) TotalFLOPs() int64 {
	var n int64
	for _, op := range g.ops {
		n += op.FLOPs()
	}
	return n
}

// TotalParams sums weight elements across the graph.
func (g *Graph) TotalParams() int64 {
	var n int64
	for _, op := range g.ops {
		n += op.Params
	}
	return n
}

// WeightBytes returns the model size for element type dt.
func (g *Graph) WeightBytes(dt tensor.DType) int64 {
	return g.TotalParams() * int64(dt.Size())
}

// Validate checks every op and the inter-op shape chaining of spatial ops.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("nn: graph with empty name")
	}
	if len(g.ops) == 0 {
		return fmt.Errorf("nn: graph %s has no ops", g.Name)
	}
	names := make(map[string]bool, len(g.ops))
	for i, op := range g.ops {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("nn: graph %s op %d: %w", g.Name, i, err)
		}
		if names[op.Name] {
			return fmt.Errorf("nn: graph %s has duplicate op name %q", g.Name, op.Name)
		}
		names[op.Name] = true
	}
	return nil
}

// KindHistogram counts ops by kind.
func (g *Graph) KindHistogram() map[OpKind]int {
	h := make(map[OpKind]int)
	for _, op := range g.ops {
		h[op.Kind]++
	}
	return h
}

// Summary renders a one-line description of the graph.
func (g *Graph) Summary() string {
	return fmt.Sprintf("%s: %d ops, %.1f MMACs, %.2fM params, input %v",
		g.Name, g.NumOps(), float64(g.TotalMACs())/1e6, float64(g.TotalParams())/1e6, g.InputShape)
}

// Dump renders the full op list for debugging.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Summary())
	for i, op := range g.ops {
		fmt.Fprintf(&b, "%3d %-28s %-22s macs=%-12d params=%d\n", i, op.Name, op.Kind, op.MACs, op.Params)
	}
	return b.String()
}
