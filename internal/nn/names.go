package nn

// Interned op-name tables. Every graph build names its ops
// "<prefix>_<index>" with a per-graph running index, and activation
// fusion derives "<name>+<act>" from them — a bounded, heavily repeated
// vocabulary (the lab's parallel workers rebuild the same eleven graphs
// constantly). Interning makes each distinct name cost one allocation
// per process instead of one per build. Both tables only ever grow, are
// guarded for concurrent builders, and lookups on the warm path
// allocate nothing (typed map, struct key, no boxing).

import (
	"fmt"
	"sync"
)

var (
	nameMu sync.RWMutex
	// nameTab maps a prefix to its interned "<prefix>_<n>" names,
	// index n-1 holding "<prefix>_<n>".
	nameTab = map[string][]string{}
)

// internedName returns the canonical "<prefix>_<n>" string (n >= 1),
// building and caching any missing entries up to n.
func internedName(prefix string, n int) string {
	nameMu.RLock()
	names := nameTab[prefix]
	nameMu.RUnlock()
	if n <= len(names) {
		return names[n-1]
	}
	nameMu.Lock()
	names = nameTab[prefix]
	for len(names) < n {
		names = append(names, fmt.Sprintf("%s_%d", prefix, len(names)+1))
	}
	nameTab[prefix] = names
	nameMu.Unlock()
	return names[n-1]
}

type fusedKey struct{ name, act string }

var (
	fusedMu  sync.RWMutex
	fusedTab = map[fusedKey]string{}
)

// internedFusedName returns the canonical "<name>+<act>" string the
// activation-fusion pass assigns, interning it on first use.
func internedFusedName(name, act string) string {
	k := fusedKey{name, act}
	fusedMu.RLock()
	s, ok := fusedTab[k]
	fusedMu.RUnlock()
	if ok {
		return s
	}
	fusedMu.Lock()
	if t, ok := fusedTab[k]; ok {
		s = t
	} else {
		s = name + "+" + act
		fusedTab[k] = s
	}
	fusedMu.Unlock()
	return s
}
