package plan

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aitax/internal/models"
	"aitax/internal/nn"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

func testKey(variant int) Key {
	return Key{
		Kind:     "test",
		Model:    "MobileNet 1.0 v1",
		DType:    tensor.Float32,
		Scope:    "gpu",
		Platform: "Google Pixel 3",
		Variant:  variant,
	}
}

// TestGetBuildsOnce pins the cache's contract: one build per entry
// lifetime, every later Get a hit returning the same value.
func TestGetBuildsOnce(t *testing.T) {
	c := New()
	builds := 0
	build := func() any { builds++; return []int{1, 2, 3} }

	v1 := c.Get(testKey(0), build)
	v2 := c.Get(testKey(0), build)
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if &v1.([]int)[0] != &v2.([]int)[0] {
		t.Fatal("second Get returned a different value, want the cached one")
	}
	if hits, misses, inv := c.Stats(); hits != 1 || misses != 1 || inv != 0 {
		t.Fatalf("stats = (%d hits, %d misses, %d invalidations), want (1, 1, 0)", hits, misses, inv)
	}

	// A different Variant is a different entry.
	c.Get(testKey(1), build)
	if builds != 2 {
		t.Fatalf("distinct key reused an entry: %d builds, want 2", builds)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestInvalidate pins that dropping an entry forces exactly one rebuild
// and that invalidating an absent key is a counted no-op... only present
// entries bump the invalidation counter.
func TestInvalidate(t *testing.T) {
	c := New()
	builds := 0
	build := func() any { builds++; return builds }

	c.Get(testKey(0), build)
	c.Invalidate(testKey(0))
	c.Invalidate(testKey(0)) // absent now: must not double-count
	if got := c.Get(testKey(0), build).(int); got != 2 {
		t.Fatalf("rebuild returned %d, want 2", got)
	}
	if builds != 2 {
		t.Fatalf("build ran %d times after invalidate, want 2", builds)
	}
	if _, _, inv := c.Stats(); inv != 1 {
		t.Fatalf("invalidations = %d, want 1 (absent key must not count)", inv)
	}
}

// TestNilCache pins that a nil *Cache degrades to always-build: every
// accessor is safe and Get simply runs the build function.
func TestNilCache(t *testing.T) {
	var c *Cache
	builds := 0
	for i := 0; i < 3; i++ {
		c.Get(testKey(0), func() any { builds++; return nil })
	}
	if builds != 3 {
		t.Fatalf("nil cache ran build %d times, want 3", builds)
	}
	c.Invalidate(testKey(0))
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
	if h, m, i := c.Stats(); h != 0 || m != 0 || i != 0 {
		t.Fatal("nil cache Stats != zero")
	}
}

// TestGetConcurrent hammers one key from many goroutines while another
// set of goroutines invalidates it: under -race this doubles as the
// cache's data-race proof, and the build counter bounds stay exact —
// every returned value is complete (never a half-built entry) and the
// build count never exceeds invalidations+1 generations.
func TestGetConcurrent(t *testing.T) {
	c := New()
	var builds atomic.Int64
	build := func() any {
		builds.Add(1)
		// A non-trivial build widens the once window.
		s := make([]time.Duration, 64)
		for i := range s {
			s[i] = time.Duration(i)
		}
		return s
	}

	const getters, invalidators, rounds = 8, 2, 200
	var wg sync.WaitGroup
	for g := 0; g < getters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := c.Get(testKey(0), build).([]time.Duration)
				if len(s) != 64 || s[63] != 63 {
					t.Error("observed a partially built entry")
					return
				}
			}
		}()
	}
	var invs atomic.Int64
	for g := 0; g < invalidators; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Invalidate(testKey(0))
				invs.Add(1)
			}
		}()
	}
	wg.Wait()
	if b := builds.Load(); b < 1 || b > invs.Load()+1 {
		t.Fatalf("builds = %d, want in [1, %d]", b, invs.Load()+1)
	}
}

// TestPartitionSegments pins the greedy maximal-run assignment on a
// hand-made support pattern.
func TestPartitionSegments(t *testing.T) {
	m, err := models.ByName("MobileNet 1.0 v1")
	if err != nil {
		t.Fatal(err)
	}
	ops := m.Graph.Ops()
	if len(ops) < 8 {
		t.Fatalf("graph too small for the test: %d ops", len(ops))
	}

	// Support everything: one accel segment covering the whole graph.
	segs := PartitionSegments(ops, tensor.Float32, func(*nn.Op, tensor.DType) bool { return true })
	if len(segs) != 1 || !segs[0].Accel || segs[0].Start != 0 || segs[0].End != len(ops) {
		t.Fatalf("all-supported: got %+v", segs)
	}

	// Support nothing: one CPU segment.
	segs = PartitionSegments(ops, tensor.Float32, func(*nn.Op, tensor.DType) bool { return false })
	if len(segs) != 1 || segs[0].Accel || segs[0].End != len(ops) {
		t.Fatalf("none-supported: got %+v", segs)
	}

	// Alternate in blocks of 3: runs must be maximal and cover [0, n).
	segs = PartitionSegments(ops, tensor.Float32, func(op *nn.Op, _ tensor.DType) bool {
		for i, o := range ops {
			if o == op {
				return (i/3)%2 == 0
			}
		}
		return false
	})
	next := 0
	for i, s := range segs {
		if s.Start != next {
			t.Fatalf("segment %d starts at %d, want %d (gap or overlap)", i, s.Start, next)
		}
		if s.End <= s.Start {
			t.Fatalf("segment %d empty: %+v", i, s)
		}
		if i > 0 && segs[i-1].Accel == s.Accel {
			t.Fatalf("segments %d and %d share assignment %v: runs not maximal", i-1, i, s.Accel)
		}
		next = s.End
	}
	if next != len(ops) {
		t.Fatalf("segments cover [0, %d), want [0, %d)", next, len(ops))
	}

	if segs := PartitionSegments(nil, tensor.Float32, func(*nn.Op, tensor.DType) bool { return true }); segs != nil {
		t.Fatalf("empty ops produced segments: %+v", segs)
	}
}

// TestOpCostsMatchesDevice pins that the cached schedule is exactly the
// per-op recomputation it replaces — the byte-identity invariant the
// whole cache rests on.
func TestOpCostsMatchesDevice(t *testing.T) {
	m, err := models.ByName("Inception v3")
	if err != nil {
		t.Fatal(err)
	}
	dev := &soc.Pixel3().GPU
	for _, dt := range []tensor.DType{tensor.Float32, tensor.UInt8} {
		costs := OpCosts(m.Graph.Ops(), dt, dev)
		if len(costs) != m.Graph.NumOps() {
			t.Fatalf("%v: %d costs for %d ops", dt, len(costs), m.Graph.NumOps())
		}
		for i, op := range m.Graph.Ops() {
			if want := dev.TimeFor(op.Work(dt), dt); costs[i] != want {
				t.Fatalf("%v op %d: cached %v, recomputed %v", dt, i, costs[i], want)
			}
		}
	}
}

// TestPrewarmPricesThePass pins the prewarm contract: the report counts
// jobs and entries added, prices the compile share, and re-running the
// same jobs is an all-hit no-op that adds no entries and no compile
// time — the cold-start tax is paid exactly once.
func TestPrewarmPricesThePass(t *testing.T) {
	c := New()
	build := func() any { time.Sleep(200 * time.Microsecond); return 1 }
	jobs := []Job{
		{Label: "a", Compile: func() { c.Get(testKey(0), build) }},
		{Label: "b", Compile: func() { c.Get(testKey(1), build) }},
		{Label: "unsupported", Compile: func() {}}, // skipped combo: no entries
	}
	rep := c.Prewarm(jobs)
	if rep.Jobs != 3 || rep.Entries != 2 {
		t.Fatalf("report = %d jobs, %d entries, want 3 jobs, 2 entries", rep.Jobs, rep.Entries)
	}
	if rep.Compile <= 0 || rep.Wall < rep.Compile {
		t.Fatalf("report times wall=%v compile=%v, want 0 < compile <= wall", rep.Wall, rep.Compile)
	}
	again := c.Prewarm(jobs)
	if again.Entries != 0 || again.Compile != 0 {
		t.Fatalf("second pass added %d entries, %v compile, want a free no-op", again.Entries, again.Compile)
	}
}

// TestCompileTimeIsolatesBuildCost pins CompileTime deltas as the
// plan-compilation share of a request: a miss adds build time, a hit
// adds exactly zero.
func TestCompileTimeIsolatesBuildCost(t *testing.T) {
	c := New()
	build := func() any { time.Sleep(200 * time.Microsecond); return 1 }
	before := c.CompileTime()
	c.Get(testKey(0), build)
	afterMiss := c.CompileTime()
	if afterMiss-before < 200*time.Microsecond {
		t.Fatalf("miss added %v compile time, want at least the build's sleep", afterMiss-before)
	}
	c.Get(testKey(0), build)
	if c.CompileTime() != afterMiss {
		t.Fatalf("hit added %v compile time, want zero", c.CompileTime()-afterMiss)
	}
	if (*Cache)(nil).CompileTime() != 0 {
		t.Fatal("nil cache must report zero compile time")
	}
}
