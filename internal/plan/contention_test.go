package plan

import (
	"fmt"
	"sync"
	"testing"
)

// fleetKeys fabricates the key population a fleet fan-in produces: many
// (platform, model) pairs compiling concurrently.
func fleetKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{
			Kind:     "op-costs",
			Model:    fmt.Sprintf("model-%d", i%7),
			Scope:    "dsp",
			Platform: fmt.Sprintf("platform-%d", i),
			Variant:  31 + i%3,
		}
	}
	return keys
}

// TestCacheShardedKeysBuildOnce: the sharded map preserves the
// build-once contract under a concurrent fan-in of distinct and
// colliding keys (run under -race by make test).
func TestCacheShardedKeysBuildOnce(t *testing.T) {
	c := New()
	keys := fleetKeys(64)
	var mu sync.Mutex
	built := make(map[Key]int)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, k := range keys {
				v := c.Get(k, func() any {
					mu.Lock()
					built[k]++
					mu.Unlock()
					return k.Platform
				})
				if v != k.Platform {
					t.Errorf("key %d returned %v", i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k, n := range built {
		if n != 1 {
			t.Fatalf("key %v built %d times", k, n)
		}
	}
	if c.Len() != len(keys) {
		t.Fatalf("len %d, want %d", c.Len(), len(keys))
	}
	hits, misses, _ := c.Stats()
	if misses != int64(len(keys)) {
		t.Fatalf("misses %d, want %d", misses, len(keys))
	}
	if hits+misses != int64(16*len(keys)) {
		t.Fatalf("hits+misses %d, want %d", hits+misses, 16*len(keys))
	}
}

// TestCacheShardSpread: the FNV shard function must actually spread a
// fleet-shaped key population — all keys landing in one shard would
// silently restore the single-mutex behavior.
func TestCacheShardSpread(t *testing.T) {
	c := New()
	used := make(map[*cacheShard]bool)
	for _, k := range fleetKeys(256) {
		used[c.shard(k)] = true
	}
	if len(used) < cacheShards/2 {
		t.Fatalf("256 fleet keys landed in only %d/%d shards", len(used), cacheShards)
	}
}

// TestInvalidateIsShardLocal: invalidation still only drops the one
// entry, wherever it hashed to.
func TestInvalidateIsShardLocal(t *testing.T) {
	c := New()
	keys := fleetKeys(32)
	for _, k := range keys {
		c.Get(k, func() any { return 1 })
	}
	c.Invalidate(keys[3])
	if c.Len() != len(keys)-1 {
		t.Fatalf("len %d after invalidate, want %d", c.Len(), len(keys)-1)
	}
	_, _, inv := c.Stats()
	if inv != 1 {
		t.Fatalf("invalidations %d, want 1", inv)
	}
	// Re-Get rebuilds only the dropped key.
	rebuilt := 0
	for _, k := range keys {
		c.Get(k, func() any { rebuilt++; return 1 })
	}
	if rebuilt != 1 {
		t.Fatalf("rebuilt %d entries, want 1", rebuilt)
	}
}

// BenchmarkPlanCacheContention is the shard fan-in microbenchmark the
// bench-smoke gate tracks: every worker hammers warm Gets across a
// fleet-shaped key population. Steady-state lookups must stay
// allocation-free; the sharded map keeps ns/op flat as -cpu grows where
// the single-mutex layout collapsed.
func BenchmarkPlanCacheContention(b *testing.B) {
	c := New()
	keys := fleetKeys(64)
	for _, k := range keys {
		c.Get(k, func() any { return k.Platform })
	}
	b.ReportAllocs()
	b.ResetTimer()
	if b.N == 1 {
		// The -benchtime=1x alloc smoke gates allocs/op exactly, and
		// RunParallel's goroutine setup would bill itself to the single
		// op. The warm-Get alloc contract is identical serially.
		if c.Get(keys[0], nil) == nil {
			b.Fatal("warm key missed")
		}
		return
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&63]
			i++
			if c.Get(k, nil) == nil {
				b.Fatal("warm key missed")
			}
		}
	})
}

// BenchmarkPlanCacheGetWarm is the uncontended warm-hit path.
func BenchmarkPlanCacheGetWarm(b *testing.B) {
	c := New()
	k := fleetKeys(1)[0]
	c.Get(k, func() any { return 1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(k, nil)
	}
}
