// Package plan is the compiled-inference-plan cache: partition
// assignments and op-level cost schedules computed once per (model,
// dtype, delegate, platform) and shared across every interpreter and
// framework instance in the process — including the lab's parallel
// workers, which all run the same configurations against their own
// simulated stacks.
//
// The cache stores only *derived, deterministic* artifacts: pure
// functions of the model graph, the precision, the support matrices and
// the platform's device constants. Re-building an entry always yields
// the same value, so sharing (or invalidating) an entry can never
// change simulation results — it only removes repeated host-side work.
// Anything fault-dependent (a re-planned CPU-only layout, a shattered
// quantized plan's one-time DSP probe) stays per-instance and is never
// cached; fault-driven re-plans additionally invalidate the affected
// entry so later compiles start from a clean build.
package plan

import (
	"sync"
	"time"

	"aitax/internal/nn"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// Key identifies one cached plan artifact.
type Key struct {
	// Kind separates artifact namespaces ("tflite-partition",
	// "nnapi-partition", "op-costs", ...).
	Kind  string
	Model string
	DType tensor.DType
	// Scope is the delegate or target the artifact belongs to (partition
	// plans are per delegate, cost schedules per target).
	Scope string
	// Platform is the SoC product name; device constants differ per SoC.
	Platform string
	// Variant disambiguates graph variants that share a model name —
	// callers pass the op count, which differs whenever activation
	// fusion changed the graph.
	Variant int
}

type entry struct {
	once sync.Once
	val  any
}

// Cache is a concurrent build-once store. The zero value is not usable;
// construct with New. Get is safe to call from any number of goroutines:
// the first caller for a key runs the build function, everyone else
// blocks until the value is ready (sync.Once), and distinct keys build
// concurrently.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry

	hits, misses, invalidations int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]*entry)}
}

// Shared is the process-wide cache every standard-built runtime uses.
// Frameworks constructed with custom support matrices or targets must
// not use it (their plans are not a function of the key alone).
var Shared = New()

// Get returns the cached value for k, building it with build exactly
// once per entry lifetime. A nil cache always builds.
func (c *Cache) Get(k Key, build func() any) any {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &entry{}
		c.entries[k] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// Invalidate drops the entry for k (if present), so the next Get
// rebuilds it. Used by fault-driven re-plans: only the affected entry
// goes, everything else stays warm.
func (c *Cache) Invalidate(k Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		delete(c.entries, k)
		c.invalidations++
	}
	c.mu.Unlock()
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative hit/miss/invalidation counts.
func (c *Cache) Stats() (hits, misses, invalidations int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations
}

// Segment is one contiguous op range [Start, End) in graph order,
// assigned either to the accelerator or to the CPU side of a plan.
// Index-based ranges (rather than op pointers) make the assignment
// shareable across stacks: every stack rebuilds the same graphs in the
// same order, but with fresh Op structs.
type Segment struct {
	Accel      bool
	Start, End int
}

// PartitionSegments greedily splits ops into maximal accelerator-
// supported runs — the assignment step both TFLite's delegate mechanism
// and NNAPI's partitioner perform.
func PartitionSegments(ops []*nn.Op, dt tensor.DType, supports func(*nn.Op, tensor.DType) bool) []Segment {
	var segs []Segment
	for i, op := range ops {
		accel := supports(op, dt)
		if n := len(segs); n > 0 && segs[n-1].Accel == accel {
			segs[n-1].End = i + 1
			continue
		}
		segs = append(segs, Segment{Accel: accel, Start: i, End: i + 1})
	}
	return segs
}

// OpCosts computes the per-op device time schedule for ops at precision
// dt on dev — the values a driver's execute loop would otherwise
// recompute every frame. Target-level factors (thread splits, delegate
// efficiency, per-op dispatch overhead) are applied at execution time,
// so one schedule per device serves every target on that device.
func OpCosts(ops []*nn.Op, dt tensor.DType, dev *soc.Device) []time.Duration {
	costs := make([]time.Duration, len(ops))
	for i, op := range ops {
		costs[i] = dev.TimeFor(op.Work(dt), dt)
	}
	return costs
}
