// Package plan is the compiled-inference-plan cache: partition
// assignments and op-level cost schedules computed once per (model,
// dtype, delegate, platform) and shared across every interpreter and
// framework instance in the process — including the lab's parallel
// workers, which all run the same configurations against their own
// simulated stacks.
//
// The cache stores only *derived, deterministic* artifacts: pure
// functions of the model graph, the precision, the support matrices and
// the platform's device constants. Re-building an entry always yields
// the same value, so sharing (or invalidating) an entry can never
// change simulation results — it only removes repeated host-side work.
// Anything fault-dependent (a re-planned CPU-only layout, a shattered
// quantized plan's one-time DSP probe) stays per-instance and is never
// cached; fault-driven re-plans additionally invalidate the affected
// entry so later compiles start from a clean build.
package plan

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aitax/internal/nn"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// Key identifies one cached plan artifact.
type Key struct {
	// Kind separates artifact namespaces ("tflite-partition",
	// "nnapi-partition", "op-costs", ...).
	Kind  string
	Model string
	DType tensor.DType
	// Scope is the delegate or target the artifact belongs to (partition
	// plans are per delegate, cost schedules per target).
	Scope string
	// Platform is the SoC product name; device constants differ per SoC.
	Platform string
	// Variant disambiguates graph variants that share a model name —
	// callers pass the op count, which differs whenever activation
	// fusion changed the graph.
	Variant int
}

type entry struct {
	once sync.Once
	val  any
}

// cacheShards is the number of independently locked map shards. Sixteen
// comfortably covers the worst observed fan-in (a fleet run's worker
// pool compiling one (platform, model) key per catalog entry at shard
// start) without bloating the empty cache.
const cacheShards = 16

// cacheShard is one independently locked slice of the key space.
// Padding would buy nothing here: the mutex is held for a map operation,
// not a spin.
type cacheShard struct {
	mu      sync.Mutex
	entries map[Key]*entry

	hits, misses, invalidations int64
}

// Cache is a concurrent build-once store. The zero value is not usable;
// construct with New. Get is safe to call from any number of goroutines:
// the first caller for a key runs the build function, everyone else
// blocks until the value is ready (sync.Once), and distinct keys build
// concurrently. The key space is sharded across independently locked
// maps so that many keys resolving at once — a fleet run's shards all
// warming their (platform, model) plans at fan-in — do not serialize on
// one mutex; builds themselves always ran outside the lock (per-entry
// sync.Once), so sharding only removes map-access contention.
type Cache struct {
	shards [cacheShards]cacheShard

	// compileNS accumulates host wall time spent inside build functions
	// (atomically; builds run outside the shard locks). It is the
	// plan-compilation tax callers have paid so far — the quantity
	// Prewarm moves from the first request to startup.
	compileNS int64
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
	}
	return c
}

// shard picks the slice of the key space k lives in (FNV-1a over every
// key field; strings dominate the entropy, the ints break ties between
// graph variants).
func (c *Cache) shard(k Key) *cacheShard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, s := range [...]string{k.Kind, k.Model, k.Scope, k.Platform} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator so ("ab","c") != ("a","bc")
		h *= prime
	}
	h ^= uint64(k.DType)
	h *= prime
	h ^= uint64(k.Variant)
	h *= prime
	return &c.shards[h%cacheShards]
}

// Shared is the process-wide cache every standard-built runtime uses.
// Frameworks constructed with custom support matrices or targets must
// not use it (their plans are not a function of the key alone).
var Shared = New()

// Get returns the cached value for k, building it with build exactly
// once per entry lifetime. A nil cache always builds.
func (c *Cache) Get(k Key, build func() any) any {
	if c == nil {
		return build()
	}
	sh := c.shard(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		e = &entry{}
		sh.entries[k] = e
		sh.misses++
	} else {
		sh.hits++
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.val = build()
		atomic.AddInt64(&c.compileNS, int64(time.Since(start)))
	})
	return e.val
}

// CompileTime reports cumulative host wall time spent building cache
// entries. Deltas around a request isolate the plan-compilation share
// of its latency; a fully prewarmed request adds exactly zero.
func (c *Cache) CompileTime() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&c.compileNS))
}

// Invalidate drops the entry for k (if present), so the next Get
// rebuilds it. Used by fault-driven re-plans: only the affected entry
// goes, everything else stays warm.
func (c *Cache) Invalidate(k Key) {
	if c == nil {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	if _, ok := sh.entries[k]; ok {
		delete(sh.entries, k)
		sh.invalidations++
	}
	sh.mu.Unlock()
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats reports cumulative hit/miss/invalidation counts, summed across
// the map shards.
func (c *Cache) Stats() (hits, misses, invalidations int64) {
	if c == nil {
		return 0, 0, 0
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		invalidations += sh.invalidations
		sh.mu.Unlock()
	}
	return hits, misses, invalidations
}

// Job is one prewarm compilation unit: Compile must build — and thereby
// cache — every plan artifact one configuration needs. The plan package
// cannot depend on the frameworks that compile plans (they import it),
// so jobs carry opaque closures; internal/tflite enumerates the Table-I
// grid into jobs, internal/serve enumerates a serving config's.
type Job struct {
	// Label identifies the configuration for progress reporting
	// ("Google Pixel 3/MobileNet 1.0 v1/int8/nnapi").
	Label string
	// Compile builds the configuration's plans. Skipping an unsupported
	// combination by returning early is fine — it simply adds no entries.
	Compile func()
}

// Report summarizes one prewarm pass.
type Report struct {
	// Jobs is the number of configurations compiled.
	Jobs int
	// Entries is the number of cache entries the pass added (zero when
	// everything was already warm).
	Entries int
	// Wall is the pass's total host wall time.
	Wall time.Duration
	// Compile is the share of Wall spent inside plan builds — the
	// cold-start tax moved off the first request onto startup.
	Compile time.Duration
}

// String renders the report the way the -prewarm flags print it.
func (r Report) String() string {
	return fmt.Sprintf("compiled %d plan entries from %d configurations in %v (%v in plan builds)",
		r.Entries, r.Jobs, r.Wall.Round(time.Microsecond), r.Compile.Round(time.Microsecond))
}

// Prewarm runs every job against the cache and reports how many entries
// the pass added and what it cost. Running it at startup moves the
// first-request plan-compilation tax to load time; re-running it is a
// cheap no-op (all hits, zero entries added).
func (c *Cache) Prewarm(jobs []Job) Report {
	start := time.Now()
	before, compileBefore := c.Len(), c.CompileTime()
	for _, j := range jobs {
		j.Compile()
	}
	return Report{
		Jobs:    len(jobs),
		Entries: c.Len() - before,
		Wall:    time.Since(start),
		Compile: c.CompileTime() - compileBefore,
	}
}

// Segment is one contiguous op range [Start, End) in graph order,
// assigned either to the accelerator or to the CPU side of a plan.
// Index-based ranges (rather than op pointers) make the assignment
// shareable across stacks: every stack rebuilds the same graphs in the
// same order, but with fresh Op structs.
type Segment struct {
	Accel      bool
	Start, End int
}

// PartitionSegments greedily splits ops into maximal accelerator-
// supported runs — the assignment step both TFLite's delegate mechanism
// and NNAPI's partitioner perform.
func PartitionSegments(ops []*nn.Op, dt tensor.DType, supports func(*nn.Op, tensor.DType) bool) []Segment {
	var segs []Segment
	for i, op := range ops {
		accel := supports(op, dt)
		if n := len(segs); n > 0 && segs[n-1].Accel == accel {
			segs[n-1].End = i + 1
			continue
		}
		segs = append(segs, Segment{Accel: accel, Start: i, End: i + 1})
	}
	return segs
}

// OpCosts computes the per-op device time schedule for ops at precision
// dt on dev — the values a driver's execute loop would otherwise
// recompute every frame. Target-level factors (thread splits, delegate
// efficiency, per-op dispatch overhead) are applied at execution time,
// so one schedule per device serves every target on that device.
func OpCosts(ops []*nn.Op, dt tensor.DType, dev *soc.Device) []time.Duration {
	costs := make([]time.Duration, len(ops))
	for i, op := range ops {
		costs[i] = dev.TimeFor(op.Work(dt), dt)
	}
	return costs
}
