// Package cli holds the flag plumbing the aitax command-line tools
// share, so every binary registers, parses and validates the common
// flags identically: the observability exports (-trace, -metrics), the
// deterministic fault plan (-faults), the lab worker pool (-parallel,
// -progress), and the dtype/delegate vocabulary.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"aitax/internal/faults"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// Common carries the values of the shared flags after parsing. Fields
// whose flags a command did not register keep their zero value
// (Parallel defaults to GOMAXPROCS only when registered).
type Common struct {
	// Trace is the Chrome trace-event JSON output path ("" = off).
	Trace string
	// Metrics is the Prometheus-style metrics output path ("" = off).
	Metrics string
	// FaultSpec is the raw -faults plan; FaultPlan parses it.
	FaultSpec string
	// Parallel is the lab worker-pool size.
	Parallel int
	// Progress enables per-job completion reports on stderr.
	Progress bool
}

// Options selects which shared flags a command registers.
type Options struct {
	Trace    bool
	Metrics  bool
	Faults   bool
	Parallel bool
	Progress bool
	// TraceAlias registers an extra legacy spelling for -trace writing
	// the same value (aitax-profile's original -chrome flag).
	TraceAlias string
}

// Register adds the selected shared flags to fs with their canonical
// names, descriptions and defaults, and returns the struct their parsed
// values land in.
func Register(fs *flag.FlagSet, o Options) *Common {
	c := &Common{}
	if o.Trace {
		fs.StringVar(&c.Trace, "trace",
			"", "write a Chrome trace-event JSON of the run to this path")
		if o.TraceAlias != "" {
			fs.StringVar(&c.Trace, o.TraceAlias,
				"", "legacy alias for -trace")
		}
	}
	if o.Metrics {
		fs.StringVar(&c.Metrics, "metrics",
			"", "write Prometheus-style metrics of the run to this path")
	}
	if o.Faults {
		fs.StringVar(&c.FaultSpec, "faults",
			"", `deterministic fault plan, e.g. "rpc=0.1,timeout=0.05,init=1,seed=7" (see docs/FAULTS.md)`)
	}
	if o.Parallel {
		fs.IntVar(&c.Parallel, "parallel", runtime.GOMAXPROCS(0),
			"worker-pool size; output is byte-identical at any value")
	}
	if o.Progress {
		fs.BoolVar(&c.Progress, "progress",
			false, "report per-job completion on stderr")
	}
	return c
}

// FaultPlan parses the -faults spec. The empty string is the zero plan.
func (c *Common) FaultPlan() (faults.Plan, error) { return faults.ParsePlan(c.FaultSpec) }

// ParseDType resolves the -dtype vocabulary shared by every command.
func ParseDType(s string) (tensor.DType, error) {
	switch s {
	case "fp32", "float32":
		return tensor.Float32, nil
	case "int8", "uint8", "quant":
		return tensor.UInt8, nil
	default:
		return tensor.Float32, fmt.Errorf("unknown dtype %q (fp32|int8)", s)
	}
}

// ParseDelegate resolves the -delegate vocabulary shared by every
// command.
func ParseDelegate(s string) (tflite.Delegate, error) {
	switch s {
	case "cpu":
		return tflite.DelegateCPU, nil
	case "gpu":
		return tflite.DelegateGPU, nil
	case "hexagon", "dsp":
		return tflite.DelegateHexagon, nil
	case "nnapi":
		return tflite.DelegateNNAPI, nil
	default:
		return tflite.DelegateCPU, fmt.Errorf("unknown delegate %q (cpu|gpu|hexagon|nnapi)", s)
	}
}

// WriteFile creates path and streams write into it, closing the file
// and propagating the first error — the export idiom every command
// uses for -trace/-metrics outputs.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
