package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func TestRegisterSelectsFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs, Options{Trace: true, Metrics: true, Faults: true, Parallel: true, Progress: true})
	if err := fs.Parse([]string{
		"-trace", "t.json", "-metrics", "m.prom", "-faults", "rpc=0.1", "-parallel", "3", "-progress",
	}); err != nil {
		t.Fatal(err)
	}
	if c.Trace != "t.json" || c.Metrics != "m.prom" || c.FaultSpec != "rpc=0.1" ||
		c.Parallel != 3 || !c.Progress {
		t.Fatalf("parsed values %+v", c)
	}
	plan, err := c.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.RPCErrorRate != 0.1 {
		t.Fatalf("fault plan %+v", plan)
	}
}

func TestRegisterDefaultsAndAlias(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Register(fs, Options{Trace: true, TraceAlias: "chrome", Parallel: true})
	if err := fs.Parse([]string{"-chrome", "legacy.json"}); err != nil {
		t.Fatal(err)
	}
	if c.Trace != "legacy.json" {
		t.Fatalf("alias did not set Trace: %q", c.Trace)
	}
	if c.Parallel != runtime.GOMAXPROCS(0) {
		t.Fatalf("parallel default %d, want GOMAXPROCS", c.Parallel)
	}
	// Unregistered flags stay unknown.
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	Register(fs2, Options{})
	if err := fs2.Parse([]string{"-trace", "x"}); err == nil {
		t.Fatal("unregistered -trace parsed")
	}
}

func TestParseDTypeAndDelegate(t *testing.T) {
	for s, want := range map[string]tensor.DType{
		"fp32": tensor.Float32, "float32": tensor.Float32,
		"int8": tensor.UInt8, "uint8": tensor.UInt8, "quant": tensor.UInt8,
	} {
		got, err := ParseDType(s)
		if err != nil || got != want {
			t.Errorf("ParseDType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDType("bf16"); err == nil {
		t.Error("ParseDType accepted bf16")
	}
	for s, want := range map[string]tflite.Delegate{
		"cpu": tflite.DelegateCPU, "gpu": tflite.DelegateGPU,
		"hexagon": tflite.DelegateHexagon, "dsp": tflite.DelegateHexagon,
		"nnapi": tflite.DelegateNNAPI,
	} {
		got, err := ParseDelegate(s)
		if err != nil || got != want {
			t.Errorf("ParseDelegate(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDelegate("npu"); err == nil {
		t.Error("ParseDelegate accepted npu")
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read %q, %v", b, err)
	}
	if err := WriteFile(path, func(io.Writer) error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("write error swallowed")
	}
}
