// Package telemetry is the end-to-end observability layer: hierarchical
// pipeline spans on virtual time and a deterministic metrics registry.
//
// The paper's core argument (§III) is that the AI tax only becomes
// visible when the *whole* pipeline is observed — capture,
// pre-processing, framework scheduling, FastRPC offload, inference,
// post-processing — not just the kernel. This package supplies that
// observation layer for the simulated stack: every instrumented frame
// yields a span tree matching the Table-III stage taxonomy, FastRPC
// crossings carry flow links between the CPU and DSP tracks, and the
// registry aggregates per-stage latency distributions with exact
// percentiles (no wall-clock, no sampling randomness — runs regenerate
// byte-identically).
//
// Telemetry is zero-cost when off: every method is safe on a nil
// *Tracer / nil *Registry and does nothing, so pipeline code
// instruments unconditionally. A tracer never schedules simulation
// events or consumes random numbers, so enabling it cannot perturb a
// run — traced and untraced measurements of the same seed are
// identical.
package telemetry

import (
	"time"

	"aitax/internal/sim"
)

// Track is the timeline a span is drawn on, matching the processor the
// work ran on. Chrome-trace export maps each track to its own thread row.
type Track int

// Tracks.
const (
	// TrackCPU carries the application pipeline and CPU-side framework
	// and transport work.
	TrackCPU Track = iota
	// TrackDSP carries Hexagon DSP execution (behind FastRPC).
	TrackDSP
	// TrackGPU carries GPU delegate execution.
	TrackGPU
)

// String names the track.
func (t Track) String() string {
	switch t {
	case TrackDSP:
		return "dsp"
	case TrackGPU:
		return "gpu"
	default:
		return "cpu"
	}
}

// Attr is one span attribute. A slice (not a map) keeps attribute order
// deterministic in every export.
type Attr struct {
	Key, Value string
}

// Span is one completed (or still-open) pipeline interval in virtual
// time. IDs are sequential per tracer, starting at 1; Parent 0 means a
// root span. A Span whose End precedes its Start is still open and is
// treated as zero-length by exports.
type Span struct {
	ID     int64
	Parent int64
	// Name is the stage ("capture", "pre", "framework", "rpc-down",
	// "infer", "rpc-up", "post", "ui", ...).
	Name string
	// Component is the subsystem that emitted the span ("app",
	// "capture", "preproc", "tflite", "fastrpc", "driver", ...).
	Component string
	Track     Track
	Start     sim.Time
	End       sim.Time
	Attrs     []Attr
}

// Duration returns the span length (zero while the span is open).
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the value of the named attribute, or "".
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Flow is a causal link between two spans on (usually) different
// tracks — a FastRPC crossing from the CPU into the DSP and back.
// Chrome-trace export renders flows as connecting arrows.
type Flow struct {
	ID   int64
	Name string
	// From and To are span IDs; the arrow is drawn from the end of From
	// to the start of To.
	From, To int64
}

// ActiveSpan is a live handle on a recorded span. A nil *ActiveSpan is
// valid everywhere one is accepted (it marks "tracing off" or "no
// parent") and every method on it is a no-op.
type ActiveSpan struct {
	t   *Tracer
	idx int
}

// Tracer records spans against a virtual clock. The zero value is not
// usable; construct with NewTracer. A nil *Tracer is a valid "tracing
// disabled" tracer: every method no-ops and returns nil handles.
type Tracer struct {
	clock func() sim.Time
	spans []Span
	flows []Flow
	// handles is a chunked slab of span handles: record hands out
	// pointers into fixed-capacity chunks, so opening a span costs one
	// allocation per chunk instead of one per span, and already-issued
	// pointers never move.
	handles [][]ActiveSpan
}

// handleChunk is the slab chunk size; one allocation covers this many
// span handles.
const handleChunk = 256

func (t *Tracer) newHandle(idx int) *ActiveSpan {
	if n := len(t.handles); n == 0 || len(t.handles[n-1]) == cap(t.handles[n-1]) {
		t.handles = append(t.handles, make([]ActiveSpan, 0, handleChunk))
	}
	c := &t.handles[len(t.handles)-1]
	*c = append(*c, ActiveSpan{t: t, idx: idx})
	return &(*c)[len(*c)-1]
}

// NewTracer creates a tracer reading virtual time from clock (typically
// an engine's Now method value).
func NewTracer(clock func() sim.Time) *Tracer {
	if clock == nil {
		panic("telemetry: NewTracer needs a clock")
	}
	return &Tracer{clock: clock}
}

// Start opens a span at the current virtual time. parent may be nil for
// a root span. On a nil tracer it returns nil.
func (t *Tracer) Start(name, component string, track Track, parent *ActiveSpan) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := t.clock()
	return t.record(name, component, track, parent, now, now.Add(-1))
}

// Emit records a fully-formed span for an interval whose boundaries are
// already known (FastRPC reconstructs its sub-steps this way). start
// must not follow end. On a nil tracer it returns nil.
func (t *Tracer) Emit(name, component string, track Track, parent *ActiveSpan, start, end sim.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	if end < start {
		panic("telemetry: Emit with end before start")
	}
	return t.record(name, component, track, parent, start, end)
}

// Instant records a zero-length marker span at the given virtual time —
// a point event (fault injected, fallback taken, thermal trip) rather
// than an interval. Exports distinguish instants from ordinary spans by
// the "instant" attribute; the Chrome recorder renders them as "i"
// events on the span's track. On a nil tracer it returns nil.
func (t *Tracer) Instant(name, component string, track Track, parent *ActiveSpan, at sim.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	a := t.record(name, component, track, parent, at, at)
	a.SetAttr("instant", "1")
	return a
}

func (t *Tracer) record(name, component string, track Track, parent *ActiveSpan, start, end sim.Time) *ActiveSpan {
	var pid int64
	if parent != nil && parent.t == t {
		pid = t.spans[parent.idx].ID
	}
	t.spans = append(t.spans, Span{
		ID:        int64(len(t.spans) + 1),
		Parent:    pid,
		Name:      name,
		Component: component,
		Track:     track,
		Start:     start,
		End:       end,
	})
	return t.newHandle(len(t.spans) - 1)
}

// End closes the span at the current virtual time. No-op on nil.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.t.spans[a.idx].End = a.t.clock()
}

// SetAttr attaches an attribute. No-op on nil.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	sp := &a.t.spans[a.idx]
	for i := range sp.Attrs {
		if sp.Attrs[i].Key == key {
			sp.Attrs[i].Value = value
			return
		}
	}
	if sp.Attrs == nil {
		// Most spans carry at most a few attributes; starting at
		// capacity 4 makes the common case a single allocation.
		sp.Attrs = make([]Attr, 0, 4)
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// SpanID returns the underlying span's ID (0 on nil).
func (a *ActiveSpan) SpanID() int64 {
	if a == nil {
		return 0
	}
	return a.t.spans[a.idx].ID
}

// Link records a flow from the end of span from to the start of span
// to. Nil handles (tracing off, or an un-traced endpoint) are ignored.
func (t *Tracer) Link(name string, from, to *ActiveSpan) {
	if t == nil || from == nil || to == nil {
		return
	}
	t.flows = append(t.flows, Flow{
		ID:   int64(len(t.flows) + 1),
		Name: name,
		From: from.t.spans[from.idx].ID,
		To:   to.t.spans[to.idx].ID,
	})
}

// Spans returns a copy of the recorded spans in emission order. Spans
// still open have End before Start; exports treat them as zero-length.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Flows returns a copy of the recorded flow links in emission order.
func (t *Tracer) Flows() []Flow {
	if t == nil {
		return nil
	}
	out := make([]Flow, len(t.flows))
	copy(out, t.flows)
	return out
}

// Len reports the number of recorded spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Roots returns the spans with no parent, in emission order.
func Roots(spans []Span) []Span {
	var out []Span
	for _, s := range spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the direct children of the span with the given ID,
// in emission order (ID 0 selects the roots).
func Children(spans []Span, parent int64) []Span {
	var out []Span
	for _, s := range spans {
		if s.Parent == parent {
			out = append(out, s)
		}
	}
	return out
}
