package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aitax/internal/sim"
)

func TestNilTracerAndRegistryAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y", TrackCPU, nil)
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.End()
	sp.SetAttr("k", "v")
	if sp.SpanID() != 0 {
		t.Fatal("nil span has an ID")
	}
	tr.Link("f", sp, sp)
	if tr.Spans() != nil || tr.Flows() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer recorded something")
	}

	var r *Registry
	r.Add("c", 1)
	r.Inc("c")
	r.Set("g", 2)
	r.Observe("h", 3)
	if r.Counter("c") != 0 || r.Gauge("g") != 0 || r.Count("h") != 0 || r.Quantile("h", 0.5) != 0 {
		t.Fatal("nil registry returned values")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanTreeAndFlows(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng.Now)

	root := tr.Start("frame", "app", TrackCPU, nil)
	eng.After(10*time.Millisecond, func() {})
	eng.Step()
	child := tr.Start("pre", "preproc", TrackCPU, root)
	eng.After(5*time.Millisecond, func() {})
	eng.Step()
	child.End()
	dsp := tr.Emit("infer", "fastrpc", TrackDSP, root, sim.Time(15e6), sim.Time(20e6))
	tr.Link("fastrpc", child, dsp)
	root.End()
	root.SetAttr("frame", "1")

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	roots := Roots(spans)
	if len(roots) != 1 || roots[0].Name != "frame" {
		t.Fatalf("roots = %+v", roots)
	}
	if roots[0].Duration() != 15*time.Millisecond {
		t.Fatalf("root duration = %v", roots[0].Duration())
	}
	if roots[0].Attr("frame") != "1" {
		t.Fatal("attr lost")
	}
	kids := Children(spans, roots[0].ID)
	if len(kids) != 2 || kids[0].Name != "pre" || kids[1].Name != "infer" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Duration() != 5*time.Millisecond {
		t.Fatalf("pre duration = %v", kids[0].Duration())
	}
	if kids[1].Track != TrackDSP {
		t.Fatal("emit track lost")
	}
	flows := tr.Flows()
	if len(flows) != 1 || flows[0].From != kids[0].ID || flows[0].To != kids[1].ID {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestOpenSpanIsZeroLength(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng.Now)
	tr.Start("open", "app", TrackCPU, nil)
	if d := tr.Spans()[0].Duration(); d != 0 {
		t.Fatalf("open span duration = %v", d)
	}
}

func TestRegistryExactQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 100; i >= 1; i-- { // insertion order must not matter
		r.Observe("lat_ms", float64(i))
	}
	if got := r.Quantile("lat_ms", 0.5); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.Quantile("lat_ms", 0.9); got != 90 {
		t.Fatalf("p90 = %v", got)
	}
	if got := r.Quantile("lat_ms", 0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if r.Count("lat_ms") != 100 {
		t.Fatal("count wrong")
	}
}

func TestRegistryMergeDeterministic(t *testing.T) {
	mk := func() (*Registry, *Registry) {
		a, b := NewRegistry(), NewRegistry()
		a.Add("calls_total", 2)
		a.Observe("lat_ms", 1)
		a.Observe("lat_ms", 3)
		b.Add("calls_total", 3)
		b.Set("temp", 33)
		b.Observe("lat_ms", 2)
		return a, b
	}
	a1, b1 := mk()
	a2, b2 := mk()
	m1, m2 := NewRegistry(), NewRegistry()
	m1.Merge(a1)
	m1.Merge(b1)
	m2.Merge(a2)
	m2.Merge(b2)
	var w1, w2 bytes.Buffer
	if err := m1.WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatal("same merge order produced different output")
	}
	if m1.Counter("calls_total") != 5 {
		t.Fatalf("merged counter = %v", m1.Counter("calls_total"))
	}
	if m1.Count("lat_ms") != 3 {
		t.Fatal("merged histogram count wrong")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Add("aitax_frames_total", 20)
	r.Set("aitax_dsp_utilization", 0.25)
	r.Observe(Labeled("aitax_stage_ms", "stage", "pre"), 4)
	r.Observe(Labeled("aitax_stage_ms", "stage", "pre"), 8)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aitax_frames_total counter",
		"aitax_frames_total 20",
		"# TYPE aitax_dsp_utilization gauge",
		"# TYPE aitax_stage_ms histogram",
		`aitax_stage_ms_bucket{stage="pre",le="5"} 1`,
		`aitax_stage_ms_bucket{stage="pre",le="+Inf"} 2`,
		`aitax_stage_ms_sum{stage="pre"} 12`,
		`aitax_stage_ms_count{stage="pre"} 2`,
		`aitax_stage_ms_p50{stage="pre"} 4`,
		`aitax_stage_ms_p99{stage="pre"} 8`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSONAndSpansJSONL(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat_ms", 7)
	r.Add("n", 1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed RegistryJSON
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Histograms["lat_ms"].P50 != 7 || parsed.Counters["n"] != 1 {
		t.Fatalf("JSON roundtrip: %+v", parsed)
	}

	eng := sim.NewEngine()
	tr := NewTracer(eng.Now)
	sp := tr.Start("frame", "app", TrackCPU, nil)
	sp.SetAttr("frame", "1")
	sp.End()
	var lines bytes.Buffer
	if err := WriteSpansJSONL(&lines, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(lines.Bytes(), &row); err != nil {
		t.Fatal(err)
	}
	if row["name"] != "frame" || row["track"] != "cpu" {
		t.Fatalf("JSONL row: %v", row)
	}
}

func TestMergeBundlesRebasesIDs(t *testing.T) {
	mkBundle := func() *Bundle {
		eng := sim.NewEngine()
		tr := NewTracer(eng.Now)
		a := tr.Start("a", "x", TrackCPU, nil)
		b := tr.Start("b", "x", TrackDSP, a)
		tr.Link("f", a, b)
		b.End()
		a.End()
		reg := NewRegistry()
		reg.Inc("jobs_total")
		return &Bundle{Spans: tr.Spans(), Flows: tr.Flows(), Registry: reg}
	}
	m := MergeBundles(mkBundle(), nil, mkBundle())
	if len(m.Spans) != 4 || len(m.Flows) != 2 {
		t.Fatalf("merged: %d spans, %d flows", len(m.Spans), len(m.Flows))
	}
	seen := map[int64]bool{}
	for _, s := range m.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	// The second bundle's child must point at the second bundle's root.
	if m.Spans[3].Parent != m.Spans[2].ID {
		t.Fatalf("rebased parent = %d, want %d", m.Spans[3].Parent, m.Spans[2].ID)
	}
	if m.Flows[1].From != m.Spans[2].ID || m.Flows[1].To != m.Spans[3].ID {
		t.Fatalf("rebased flow = %+v", m.Flows[1])
	}
	if m.Registry.Counter("jobs_total") != 2 {
		t.Fatal("registries not merged")
	}
}
