package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestStreamingRegistryBoundedAndEstimated(t *testing.T) {
	exact := NewRegistry()
	stream := NewStreamingRegistry()
	if !stream.Streaming() || exact.Streaming() {
		t.Fatal("Streaming() flags wrong")
	}
	// Uniform 0..999 ms: exact p50 is 499/500-ish, the streaming
	// estimate must land in the right bucket neighbourhood.
	for i := 0; i < 1000; i++ {
		v := float64(i)
		exact.Observe("lat_ms", v)
		stream.Observe("lat_ms", v)
	}
	if exact.Count("lat_ms") != 1000 || stream.Count("lat_ms") != 1000 {
		t.Fatalf("counts: exact %d stream %d", exact.Count("lat_ms"), stream.Count("lat_ms"))
	}
	if exact.Sum("lat_ms") != stream.Sum("lat_ms") {
		t.Fatal("sums diverge between modes")
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		e, s := exact.Quantile("lat_ms", q), stream.Quantile("lat_ms", q)
		// The coarse default buckets put the tolerance at one bucket
		// width around the exact rank.
		if math.Abs(e-s) > 260 {
			t.Errorf("q%.2f: exact %.1f stream %.1f too far apart", q, e, s)
		}
		if s < 0 || s > 999 {
			t.Errorf("q%.2f: streaming estimate %.1f escapes observed range", q, s)
		}
	}
}

func TestStreamingQuantileClampedToObservedRange(t *testing.T) {
	r := NewStreamingRegistry()
	r.Observe("x", 3)
	r.Observe("x", 3)
	r.Observe("x", 3)
	// All mass in one bucket: every quantile must be within [min,max].
	for _, q := range []float64{0, 0.5, 1} {
		if got := r.Quantile("x", q); got != 3 {
			t.Fatalf("q%g = %g, want 3 (min==max clamp)", q, got)
		}
	}
}

func TestMergeFromStreamingDegradesNotLies(t *testing.T) {
	src := NewStreamingRegistry()
	for i := 0; i < 100; i++ {
		src.Observe("m", float64(i))
	}
	dst := NewRegistry()
	dst.Observe("m", 50)
	dst.Merge(src)
	if got := dst.Count("m"); got != 101 {
		t.Fatalf("merged count %d, want 101", got)
	}
	// The destination histogram no longer has the raw values, so the
	// quantile must be the bucket estimate — within the observed range.
	if q := dst.Quantile("m", 0.99); q < 0 || q > 99 {
		t.Fatalf("post-merge p99 %g escapes observed range", q)
	}
	// Merging streaming into streaming stays exact on counts.
	dst2 := NewStreamingRegistry()
	dst2.Merge(src)
	dst2.Merge(src)
	if got := dst2.Count("m"); got != 200 {
		t.Fatalf("double merge count %d, want 200", got)
	}
}

// TestStreamingMemoryFlatAt1M is the bounded-bytes gate from the
// serving roadmap: one million observations through a streaming
// registry must not grow the heap with the observation count (the exact
// registry would retain 8 MB of float64s for the same stream).
func TestStreamingMemoryFlatAt1M(t *testing.T) {
	r := NewStreamingRegistry()
	series := Labeled("aitax_serve_latency_ms", "model", "MobileNet 1.0 v1")
	r.Observe(series, 1) // allocate the histogram before the baseline
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 1_000_000; i++ {
		r.Observe(series, float64(i%1000))
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if r.Count(series) != 1_000_001 {
		t.Fatalf("count %d", r.Count(series))
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// Generous slack for runtime noise; the failure mode we guard
	// against (retained observations) would cost ≥ 8 MB.
	if growth > 1<<20 {
		t.Fatalf("heap grew %d bytes over 1M streaming observations; want flat (<1MB)", growth)
	}
}

// TestRegistryConcurrentHammer drives one registry from many goroutines
// under -race: counters, gauges and a shared streaming histogram all
// take concurrent traffic, and the totals must come out exact.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewStreamingRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc("hits_total")
				r.Set("last_worker", float64(w))
				r.Observe("lat_ms", float64(i%100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total"); got != workers*perWorker {
		t.Fatalf("counter %v, want %d", got, workers*perWorker)
	}
	if got := r.Count("lat_ms"); got != workers*perWorker {
		t.Fatalf("histogram count %v, want %d", got, workers*perWorker)
	}
	if q := r.Quantile("lat_ms", 0.5); q < 0 || q > 99 {
		t.Fatalf("hammered p50 %g escapes observed range", q)
	}
}

// parsePromLabels recovers the label map from one Prometheus series
// name, undoing the text-format escapes — the round-trip half of the
// label-escaping contract.
func parsePromLabels(t *testing.T, series string) map[string]string {
	t.Helper()
	open := strings.IndexByte(series, '{')
	if open < 0 || !strings.HasSuffix(series, "}") {
		t.Fatalf("series %q has no label block", series)
	}
	body := series[open+1 : len(series)-1]
	out := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			t.Fatalf("malformed label block at %q", body)
		}
		key := body[:eq]
		var val strings.Builder
		i := eq + 2
		for {
			if i >= len(body) {
				t.Fatalf("unterminated label value in %q", body)
			}
			c := body[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("dangling escape in %q", body)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("unknown escape \\%c in %q", body[i+1], body)
				}
				i += 2
				continue
			}
			if c == '\n' {
				t.Fatalf("raw newline leaked into series %q", series)
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				t.Fatalf("expected ',' at %q", body[i:])
			}
			i++
		}
		body = body[i:]
	}
	return out
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	nasty := []string{
		`plain model`,
		`back\slash`,
		`quo"te`,
		"new\nline",
		"all\\three\"of\nthem",
	}
	for _, v := range nasty {
		series := Labeled("aitax_test_ms", "model", v, "tier", "a")
		got := parsePromLabels(t, series)
		if got["model"] != v || got["tier"] != "a" {
			t.Fatalf("round trip of %q gave %q", v, got["model"])
		}
	}
	// The whole exposition stays line-parseable: every line is
	// "name value" or "# TYPE ..." even with hostile label values.
	r := NewRegistry()
	for _, v := range nasty {
		r.Inc(Labeled("aitax_req_total", "model", v))
		r.Observe(Labeled("aitax_lat_ms", "model", v), 1.5)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		series := line[:sp]
		if strings.ContainsAny(series, "{") {
			parsePromLabels(t, series) // must not fail
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Fatalf("bad value on line %q: %v", line, err)
		}
	}
	if lines < len(nasty)*2 {
		t.Fatalf("suspiciously short exposition (%d lines)", lines)
	}
}

func TestLabeledUnchangedForPlainValues(t *testing.T) {
	// The escaping change must not move a single byte for the label
	// values the goldens already use.
	got := Labeled("aitax_serve_latency_ms", "model", "MobileNet 1.0 v1")
	want := `aitax_serve_latency_ms{model="MobileNet 1.0 v1"}`
	if got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
}

// BenchmarkStreamingObserve keeps the streaming hot path honest in the
// bench-smoke alloc gate: observing into a warm series must not
// allocate.
func BenchmarkStreamingObserve(b *testing.B) {
	r := NewStreamingRegistry()
	r.Observe("aitax_bench_ms", 1.0) // warm the series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe("aitax_bench_ms", float64(i%1000))
	}
}
