package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultBuckets are the fixed histogram bucket upper bounds, in the
// unit the metric is observed in (milliseconds for every latency metric
// in this repository). Fixed buckets keep exported bucket rows stable
// across runs; exact percentiles come from the retained observations,
// not from bucket interpolation.
var DefaultBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// histogram is a fixed-bucket histogram. In the default (exact) mode it
// also retains every observation in insertion order, so quantiles are
// exact and merges are deterministic. In streaming mode it keeps only
// the bucket counts plus count/sum/min/max, so memory stays flat no
// matter how many observations arrive; quantiles degrade to
// deterministic bucket interpolation.
type histogram struct {
	counts []int64 // per DefaultBuckets bound, plus a final +Inf bucket
	values []float64
	count  int64
	sum    float64
	min    float64
	max    float64
	// streaming disables observation retention (see Registry streaming
	// mode). A histogram also turns streaming when merged from a
	// streaming source: the raw values no longer exist to retain.
	streaming bool
}

func newHistogram(streaming bool) *histogram {
	return &histogram{counts: make([]int64, len(DefaultBuckets)+1), streaming: streaming}
}

func (h *histogram) observe(v float64) {
	if !h.streaming {
		h.values = append(h.values, v)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, ub := range DefaultBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(DefaultBuckets)]++
}

// quantile returns the q-quantile (q in [0,1]): exact nearest-rank when
// the observations are retained, bucket-interpolated otherwise.
func (h *histogram) quantile(q float64) float64 {
	if h.streaming {
		return QuantileFromBuckets(DefaultBuckets, h.counts, h.count, h.min, h.max, q)
	}
	n := len(h.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, h.values)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// QuantileFromBuckets estimates the q-quantile of a fixed-bucket
// histogram by linear interpolation inside the bucket holding the
// nearest-rank observation. bounds are the bucket upper bounds; counts
// has len(bounds)+1 entries (the last is the +Inf overflow bucket);
// total is the observation count and min/max the observed extremes,
// which clamp the estimate so it never leaves the observed range. The
// estimate is a pure function of its inputs, so merged histograms
// report identical quantiles regardless of merge order.
func QuantileFromBuckets(bounds []float64, counts []int64, total int64, min, max float64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo := min
		if i > 0 && bounds[i-1] > lo {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank within this bucket's occupants.
		frac := float64(rank-(cum-n)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return max
}

// Registry is a deterministic metrics store: counters, gauges, and
// fixed-bucket histograms with exact percentiles. Metric keys are full
// series names, labels included — use Labeled to build them. All
// methods are safe on a nil *Registry (they no-op / return zero), so
// instrumented code records unconditionally. The registry is safe for
// concurrent use; determinism of the *contents* comes from the callers
// (single-threaded simulations, and the lab's submission-order merge).
type Registry struct {
	mu        sync.Mutex
	streaming bool
	counters  map[string]float64
	gauges    map[string]float64
	hists     map[string]*histogram
}

// NewRegistry returns an empty registry in exact mode: histograms
// retain every observation, so percentiles are exact — the right mode
// for golden-diffed simulation runs of bounded length.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// NewStreamingRegistry returns an empty registry in streaming mode:
// histograms keep only fixed-bucket counts (plus count/sum/min/max), so
// memory stays flat under unbounded observation streams — the mode for
// long-running serving paths. Percentiles become deterministic
// bucket-interpolated estimates instead of exact ranks.
func NewStreamingRegistry() *Registry {
	r := NewRegistry()
	r.streaming = true
	return r
}

// Streaming reports whether the registry is in streaming mode.
func (r *Registry) Streaming() bool { return r != nil && r.streaming }

// escapeLabel renders a label value with Prometheus text-format
// escaping: backslash, double quote and newline become \\, \" and \n;
// every other byte passes through verbatim. Values without those three
// characters are returned unchanged (no allocation), so existing series
// names — and the goldens built from them — are byte-identical.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Labeled builds a labelled series name: Labeled("x_ms", "stage",
// "pre") → `x_ms{stage="pre"}`. Pairs are rendered in argument order,
// keeping series names deterministic. Values are escaped per the
// Prometheus text format, so arbitrary model names (quotes, backslashes,
// newlines included) stay parseable on the wire.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Labeled needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// spliceLabel inserts an extra label into a (possibly already labelled)
// series key, and optionally a suffix onto its base name.
func spliceLabel(key, suffix, k, v string) string {
	base, labels := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base, labels = key[:i], key[i+1:len(key)-1]
	}
	extra := k + `="` + escapeLabel(v) + `"`
	if labels != "" {
		labels += "," + extra
	} else {
		labels = extra
	}
	return base + suffix + "{" + labels + "}"
}

// baseName returns the series name without labels.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Add increments a counter by v.
func (r *Registry) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set records a gauge value (last write wins).
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one histogram observation.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(r.streaming)
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// TouchHistogram creates the named histogram with no observations if it
// is absent, and leaves an existing one untouched. Prewarming a server's
// registry this way makes the first scrape expose the full series set
// without fabricating samples.
func (r *Registry) TouchHistogram(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.hists[name] == nil {
		r.hists[name] = newHistogram(r.streaming)
	}
	r.mu.Unlock()
}

// Counter returns a counter's value (0 when absent or on nil).
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's value (0 when absent or on nil).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Count returns a histogram's observation count.
func (r *Registry) Count(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns a histogram's observation sum (0 when absent or on nil).
func (r *Registry) Sum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns the exact nearest-rank quantile of a histogram
// (0 when absent or empty).
func (r *Registry) Quantile(name string, q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return h.quantile(q)
}

// CounterNames returns the counter series names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysF(r.counters)
}

// HistogramNames returns the histogram series names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysH(r.hists)
}

// Merge folds other into r: counters add, gauges take other's value,
// histograms concatenate observations in other's insertion order.
// Merging the same registries in the same order always reproduces the
// same state — the lab merges per-job registries in submission order to
// keep sweep aggregates parallelism-independent.
//
// Streaming degrades but never lies: merging into a streaming registry,
// or merging from a streaming histogram (whose raw values no longer
// exist), leaves the destination histogram in streaming mode — bucket
// counts add exactly, quantiles become interpolated estimates.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeysF(other.counters) {
		r.counters[k] += other.counters[k]
	}
	for _, k := range sortedKeysF(other.gauges) {
		r.gauges[k] = other.gauges[k]
	}
	for _, k := range sortedKeysH(other.hists) {
		oh := other.hists[k]
		h := r.hists[k]
		if h == nil {
			h = newHistogram(r.streaming)
			r.hists[k] = h
		}
		if oh.streaming && !h.streaming {
			h.streaming = true
			h.values = nil
		}
		if h.streaming {
			h.values = nil
		} else {
			h.values = append(h.values, oh.values...)
		}
		if oh.count > 0 {
			if h.count == 0 || oh.min < h.min {
				h.min = oh.min
			}
			if h.count == 0 || oh.max > h.max {
				h.max = oh.max
			}
		}
		h.count += oh.count
		h.sum += oh.sum
		for i := range oh.counts {
			h.counts[i] += oh.counts[i]
		}
	}
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysH(m map[string]*histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// formatFloat renders a metric value with the shortest exact
// representation, matching Prometheus text-format conventions.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
