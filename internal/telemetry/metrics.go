package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultBuckets are the fixed histogram bucket upper bounds, in the
// unit the metric is observed in (milliseconds for every latency metric
// in this repository). Fixed buckets keep exported bucket rows stable
// across runs; exact percentiles come from the retained observations,
// not from bucket interpolation.
var DefaultBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// histogram is a fixed-bucket histogram that also retains every
// observation in insertion order, so quantiles are exact and merges are
// deterministic.
type histogram struct {
	counts []int64 // per DefaultBuckets bound, plus a final +Inf bucket
	values []float64
	sum    float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(DefaultBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	h.values = append(h.values, v)
	h.sum += v
	for i, ub := range DefaultBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(DefaultBuckets)]++
}

// quantile returns the exact nearest-rank q-quantile (q in [0,1]).
func (h *histogram) quantile(q float64) float64 {
	n := len(h.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, h.values)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// Registry is a deterministic metrics store: counters, gauges, and
// fixed-bucket histograms with exact percentiles. Metric keys are full
// series names, labels included — use Labeled to build them. All
// methods are safe on a nil *Registry (they no-op / return zero), so
// instrumented code records unconditionally. The registry is safe for
// concurrent use; determinism of the *contents* comes from the callers
// (single-threaded simulations, and the lab's submission-order merge).
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Labeled builds a labelled series name: Labeled("x_ms", "stage",
// "pre") → `x_ms{stage="pre"}`. Pairs are rendered in argument order,
// keeping series names deterministic.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Labeled needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// spliceLabel inserts an extra label into a (possibly already labelled)
// series key, and optionally a suffix onto its base name.
func spliceLabel(key, suffix, k, v string) string {
	base, labels := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base, labels = key[:i], key[i+1:len(key)-1]
	}
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels != "" {
		labels += "," + extra
	} else {
		labels = extra
	}
	return base + suffix + "{" + labels + "}"
}

// baseName returns the series name without labels.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Add increments a counter by v.
func (r *Registry) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Inc increments a counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set records a gauge value (last write wins).
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one histogram observation.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counter returns a counter's value (0 when absent or on nil).
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns a gauge's value (0 when absent or on nil).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Count returns a histogram's observation count.
func (r *Registry) Count(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return int64(len(h.values))
}

// Quantile returns the exact nearest-rank quantile of a histogram
// (0 when absent or empty).
func (r *Registry) Quantile(name string, q float64) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return h.quantile(q)
}

// CounterNames returns the counter series names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysF(r.counters)
}

// HistogramNames returns the histogram series names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysH(r.hists)
}

// Merge folds other into r: counters add, gauges take other's value,
// histograms concatenate observations in other's insertion order.
// Merging the same registries in the same order always reproduces the
// same state — the lab merges per-job registries in submission order to
// keep sweep aggregates parallelism-independent.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeysF(other.counters) {
		r.counters[k] += other.counters[k]
	}
	for _, k := range sortedKeysF(other.gauges) {
		r.gauges[k] = other.gauges[k]
	}
	for _, k := range sortedKeysH(other.hists) {
		oh := other.hists[k]
		h := r.hists[k]
		if h == nil {
			h = newHistogram()
			r.hists[k] = h
		}
		h.values = append(h.values, oh.values...)
		h.sum += oh.sum
		for i := range oh.counts {
			h.counts[i] += oh.counts[i]
		}
	}
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysH(m map[string]*histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// formatFloat renders a metric value with the shortest exact
// representation, matching Prometheus text-format conventions.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
