package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format: counters, then gauges, then histograms (with
// cumulative _bucket rows over the fixed bounds, _sum and _count), each
// histogram followed by exact p50/p90/p99 gauges suffixed _p50/_p90/
// _p99. Series are sorted by name, so output is byte-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)

	lastType := ""
	emitType := func(base, typ string) {
		if base != lastType {
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, typ)
			lastType = base
		}
	}
	for _, k := range sortedKeysF(r.counters) {
		emitType(baseName(k), "counter")
		fmt.Fprintf(bw, "%s %s\n", k, formatFloat(r.counters[k]))
	}
	for _, k := range sortedKeysF(r.gauges) {
		emitType(baseName(k), "gauge")
		fmt.Fprintf(bw, "%s %s\n", k, formatFloat(r.gauges[k]))
	}
	for _, k := range sortedKeysH(r.hists) {
		h := r.hists[k]
		emitType(baseName(k), "histogram")
		cum := int64(0)
		for i, ub := range DefaultBuckets {
			cum += h.counts[i]
			fmt.Fprintf(bw, "%s %d\n", spliceLabel(k, "_bucket", "le", formatFloat(ub)), cum)
		}
		cum += h.counts[len(DefaultBuckets)]
		fmt.Fprintf(bw, "%s %d\n", spliceLabel(k, "_bucket", "le", "+Inf"), cum)
		fmt.Fprintf(bw, "%s %s\n", suffixed(k, "_sum"), formatFloat(h.sum))
		fmt.Fprintf(bw, "%s %d\n", suffixed(k, "_count"), h.count)
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.5}, {"_p90", 0.9}, {"_p99", 0.99}} {
			fmt.Fprintf(bw, "%s %s\n", suffixed(k, q.suffix), formatFloat(h.quantile(q.q)))
		}
	}
	return bw.Flush()
}

// suffixed appends a suffix to a series' base name, preserving labels.
func suffixed(key, suffix string) string {
	base := baseName(key)
	return base + suffix + key[len(base):]
}

// HistogramJSON is a histogram's JSON export shape.
type HistogramJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets"`
}

// RegistryJSON is the registry's JSON export shape.
type RegistryJSON struct {
	Counters   map[string]float64       `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

// Snapshot returns the registry's JSON export shape (empty, non-nil
// maps on a nil registry).
func (r *Registry) Snapshot() RegistryJSON {
	out := RegistryJSON{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramJSON{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		out.Counters[k] = v
	}
	for k, v := range r.gauges {
		out.Gauges[k] = v
	}
	for k, h := range r.hists {
		hj := HistogramJSON{
			Count:   h.count,
			Sum:     h.sum,
			P50:     h.quantile(0.5),
			P90:     h.quantile(0.9),
			P99:     h.quantile(0.99),
			Buckets: map[string]int64{},
		}
		if h.count > 0 {
			hj.Min, hj.Max = h.min, h.max
		}
		for i, ub := range DefaultBuckets {
			hj.Buckets["le:"+formatFloat(ub)] = h.counts[i]
		}
		hj.Buckets["le:+Inf"] = h.counts[len(DefaultBuckets)]
		out.Histograms[k] = hj
	}
	return out
}

// WriteJSON renders the registry as a single JSON document
// (encoding/json sorts map keys, so output is byte-stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// spanJSONL is the JSONL export shape of one span.
type spanJSONL struct {
	ID        int64             `json:"id"`
	Parent    int64             `json:"parent,omitempty"`
	Name      string            `json:"name"`
	Component string            `json:"component"`
	Track     string            `json:"track"`
	StartNS   int64             `json:"start_ns"`
	DurNS     int64             `json:"dur_ns"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// WriteSpansJSONL writes one JSON object per span, in span order — the
// machine-readable sink for external analysis pipelines.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		row := spanJSONL{
			ID:        s.ID,
			Parent:    s.Parent,
			Name:      s.Name,
			Component: s.Component,
			Track:     s.Track.String(),
			StartNS:   s.Start.Nanoseconds(),
			DurNS:     int64(s.Duration()),
		}
		if len(s.Attrs) > 0 {
			row.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				row.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Bundle packages one measurement's telemetry for transport between
// layers (a lab job reports a Bundle; the lab merges them in submission
// order).
type Bundle struct {
	Spans    []Span
	Flows    []Flow
	Registry *Registry
}

// MergeBundles combines bundles in argument order into a fresh bundle.
// Span and flow IDs are re-based so they stay unique across the merge;
// registries merge deterministically (see Registry.Merge). Nil bundles
// are skipped.
func MergeBundles(bundles ...*Bundle) *Bundle {
	out := &Bundle{Registry: NewRegistry()}
	var spanOff, flowOff int64
	for _, b := range bundles {
		if b == nil {
			continue
		}
		var maxSpan, maxFlow int64
		for _, s := range b.Spans {
			s.ID += spanOff
			if s.Parent != 0 {
				s.Parent += spanOff
			}
			out.Spans = append(out.Spans, s)
			if s.ID > maxSpan {
				maxSpan = s.ID
			}
		}
		for _, f := range b.Flows {
			f.ID += flowOff
			f.From += spanOff
			f.To += spanOff
			out.Flows = append(out.Flows, f)
			if f.ID > maxFlow {
				maxFlow = f.ID
			}
		}
		spanOff, flowOff = maxSpan, maxFlow
		out.Registry.Merge(b.Registry)
	}
	return out
}
