GO ?= go

.PHONY: all build test test-norace vet bench bench-smoke bench-wall experiments validate results examples trace-demo chaos-demo serve-smoke slo-demo brownout-demo fleet-demo clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet + race so the concurrent lab runner is race-checked on every run.
test: vet
	$(GO) test -race ./...

# Plain (no -race) test run, for hosts without race-detector support.
test-norace:
	$(GO) test ./...

# Full test log, as the release process captures it.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Full benchmark sweep -> raw log + dated JSON report for the
# regression gate. Compare two reports with:
#   go run ./cmd/aitax-bench -compare OLD.json NEW.json
BENCH_DATE ?= $(shell date +%Y-%m-%d)
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/aitax-bench -parse bench_output.txt -date $(BENCH_DATE) -out BENCH_$(BENCH_DATE).json
	@echo "wrote BENCH_$(BENCH_DATE).json"

# Packages covered by the CI benchmark gates (the root package carries
# the pixel kernels and the cold-path benchmarks — ColdStart, DriverFix,
# DVFSRamp — that the arena work is locked in by).
BENCH_PKGS = . ./internal/benchfmt/ ./internal/par/ ./internal/obs/ ./internal/qos/ ./internal/telemetry/ ./internal/plan/ ./internal/fleet/
BENCH_BASELINE ?= BENCH_2026-08-08_fleet.json

# Quick allocation/regression smoke: one iteration per benchmark, parsed
# into BENCH_smoke.json (a scratch file — the committed dated baselines
# are never overwritten) and gated against the committed baseline in
# allocs-only mode: 1-iteration wall times and warm-up alloc counts are
# noise, but an allocation creeping onto a zero-alloc hot path fails the
# build exactly. CI's bench-smoke job runs this, then bench-wall.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run '^$$' $(BENCH_PKGS) 2>&1 | tee bench_smoke.txt
	$(GO) run ./cmd/aitax-bench -parse bench_smoke.txt -date $(BENCH_DATE) -out BENCH_smoke.json
	$(GO) run ./cmd/aitax-bench -compare -allocs-only $(BENCH_BASELINE) BENCH_smoke.json

# Wall-time gate, two halves (see docs/PERF.md "Wall-time gate").
#
# Half 1: the perf-critical benchmarks — the three arena cold paths and
# the zero-alloc pixel kernels — rerun at 1s/benchmark, best of 5 counts
# (Parse keeps the fastest run, which clips one-sided scheduler noise),
# and gated against the committed baseline in -wall mode: 1-iteration
# entries are skipped, ns/op below the floor is reported but not judged,
# and steady-state allocs/op is gated exactly. The threshold is wide
# (60%) because cross-run wall time on shared hardware jitters ±30%;
# the gate exists to catch gross regressions such as losing the arena
# (ColdStart ns and allocs both jump >4x).
#
# Half 2: in-process A/B — each SWAR kernel races the scalar reference
# it replaced, interleaved in one process so machine noise cancels.
# This is what pins "measurably faster": it detects a 3% loss where the
# cross-run gate cannot.
BENCH_WALL_PAT = ^Benchmark(ColdStart|DriverFix|DVFSRamp|YUVToARGB480pInto|ARGBToYUV480pInto|Normalize224Into|QuantizeInput224Into|ResizeBilinearTo224Into|ResizeNormalize224Into|ResizeQuantize224Into)$$
bench-wall:
	$(GO) test -bench='$(BENCH_WALL_PAT)' -benchtime=1s -benchmem -count=5 -run '^$$' . 2>&1 | tee bench_wall.txt
	$(GO) run ./cmd/aitax-bench -parse bench_wall.txt -date $(BENCH_DATE) -out BENCH_wall.json
	$(GO) run ./cmd/aitax-bench -compare -wall -threshold 0.60 -ns-floor 25000 $(BENCH_BASELINE) BENCH_wall.json
	AITAX_WALL_GATE=1 $(GO) test -run TestWallGate -v ./internal/imaging/ ./internal/preproc/

# Regenerate every paper table/figure plus the extensions.
experiments:
	$(GO) run ./cmd/aitax-experiments

# CI-style gate: exit non-zero if any paper shape check regressed.
validate:
	$(GO) run ./cmd/aitax-validate

# Fault-injection gate under the race detector: one model per target
# under a fixed fault plan, byte-identical at any worker-pool width
# (see docs/FAULTS.md).
chaos-demo:
	$(GO) run -race ./cmd/aitax-validate -chaos

# Refresh the committed reference results (docs/RESULTS.txt).
results:
	mkdir -p docs
	$(GO) run ./cmd/aitax-experiments -runs 50 > docs/RESULTS.txt
	$(GO) run ./cmd/aitax-experiments -runs 50 -format markdown > docs/RESULTS.md

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d >/dev/null || exit 1; done; echo all examples ran

# Smoke the whole telemetry path: traced run -> Chrome trace + metrics
# + span log, then sanity-check the files exist and are non-empty.
trace-demo:
	$(GO) run ./cmd/aitax-trace -model MobileNetV1 -delegate hexagon -frames 20 \
		-chrome trace_demo.json -metrics trace_demo.prom -jsonl trace_demo.jsonl
	@for f in trace_demo.json trace_demo.prom trace_demo.jsonl; do \
		test -s $$f || { echo "$$f missing or empty"; exit 1; }; done
	@echo "trace-demo ok: open trace_demo.json in ui.perfetto.dev"

# Serving smoke: the deterministic load simulation diffed against the
# committed golden report, at two worker-pool widths to prove the
# report is parallelism-independent (see docs/SERVE.md).
serve-smoke:
	$(GO) run ./cmd/aitax-serve -loadgen > serve_smoke.txt
	diff -u cmd/aitax-serve/testdata/load_report.golden serve_smoke.txt
	$(GO) run ./cmd/aitax-serve -loadgen -parallel 1 | diff -u cmd/aitax-serve/testdata/load_report.golden -
	@echo "serve-smoke ok: load report matches golden at any parallelism"

# SLO smoke: the load simulation with burn-rate monitoring enabled,
# diffed against the committed golden so the SLO report (compliance,
# budget burn, alert timeline) stays deterministic (see docs/SERVE.md).
slo-demo:
	$(GO) run ./cmd/aitax-serve -loadgen -slo "MobileNet 1.0 v1=4ms@95,all=6ms@90" > slo_demo.txt
	diff -u cmd/aitax-serve/testdata/slo_report.golden slo_demo.txt
	$(GO) run ./cmd/aitax-serve -loadgen -slo "MobileNet 1.0 v1=4ms@95,all=6ms@90" -parallel 1 | diff -u cmd/aitax-serve/testdata/slo_report.golden -
	@echo "slo-demo ok: burn-rate report matches golden at any parallelism"

# Brownout smoke: the pinned overload storm with the QoS brownout
# controller enabled, diffed against the committed golden (the full
# degradation anatomy stays deterministic), then the aitax-validate
# graceful-degradation gate — ladder engages and recovers, only
# best-effort is shed, and the controller holds the interactive p99
# inside an objective the frozen baseline violates (see docs/QOS.md).
brownout-demo:
	$(GO) run ./cmd/aitax-serve -loadgen \
		-models "MobileNet 1.0 v1,EfficientNet-Lite0" \
		-slo "EfficientNet-Lite0=350ms@95" \
		-qos "tick=5ms,hold=6,short=2,long=4,enter=0.1/0.2/0.3,exit=0.04/0.08/0.15" \
		-downshift "EfficientNet-Lite0=MobileNet 1.0 v1" \
		-mix "EfficientNet-Lite0=2,EfficientNet-Lite0=2:best-effort,EfficientNet-Lite0=1:interactive" \
		-ramp 300x300ms,4x3s -seed 11 -queue-depth 64 > brownout_demo.txt
	diff -u cmd/aitax-serve/testdata/brownout_report.golden brownout_demo.txt
	$(GO) run ./cmd/aitax-validate -brownout
	@echo "brownout-demo ok: degradation anatomy matches golden and the gate passed"

# Fleet smoke: the sharded 10k-device population simulation, diffed
# against the committed golden at three (-parallel, -shards) shapes to
# prove the report is sharding- and parallelism-independent, then the
# population JSONL export (see docs/FLEET.md). The golden is recorded
# at 2000 devices to keep CI fast; the 10k contract is pinned by
# TestFleetMemoryFlatAt10k.
fleet-demo:
	$(GO) run ./cmd/aitax-fleet -devices 2000 -seed 42 > fleet_demo.txt
	diff -u cmd/aitax-fleet/testdata/fleet_report.golden fleet_demo.txt
	$(GO) run ./cmd/aitax-fleet -devices 2000 -seed 42 -parallel 1 -shards 7 | diff -u cmd/aitax-fleet/testdata/fleet_report.golden -
	$(GO) run ./cmd/aitax-fleet -devices 2000 -seed 42 -parallel 8 -shards 64 -jsonl fleet_population.jsonl | diff -u cmd/aitax-fleet/testdata/fleet_report.golden -
	@test -s fleet_population.jsonl || { echo "fleet_population.jsonl missing or empty"; exit 1; }
	@echo "fleet-demo ok: population report matches golden at any sharding"

clean:
	rm -f test_output.txt bench_output.txt bench_smoke.txt BENCH_smoke.json bench_wall.txt BENCH_wall.json trace_demo.json trace_demo.prom trace_demo.jsonl serve_smoke.txt slo_demo.txt brownout_demo.txt fleet_demo.txt fleet_population.jsonl
